package pipescript

import (
	"catdb/internal/data"
	"catdb/internal/obs"
	"catdb/internal/pool"
)

// This file schedules the DAG built by dag.go: within each segment,
// ready nodes (all dependencies done) run concurrently over
// internal/pool, each against a private table view holding exactly the
// columns its footprint names. Side effects that would race or depend
// on execution order — artifact step recording, test-table
// application, the encoded-feature cap — are buffered per node and
// replayed in statement order by the merge, so results, fitted
// artifacts, and errors are bit-identical to linear execution at any
// worker count.

// nodeOutcome is everything a node execution produced.
type nodeOutcome struct {
	err     error
	buf     *nodeBuffer
	adds    []*data.Column // columns the node created, in creation order
	removes []string       // columns the node dropped, in original order
	seconds float64
}

// executeDAG runs the program segment-by-segment: parallel waves for
// resolvable non-barrier runs, plain execStmt for everything else.
func (e *Executor) executeDAG(p *Program, tr, te *data.Table, maxOH int, res *Result, trained *bool) error {
	linear := func(stmts []Stmt) error {
		for _, st := range stmts {
			if err := e.execStmt(st, tr, te, maxOH, res, trained); err != nil {
				return err
			}
		}
		return nil
	}
	for _, seg := range segmentProgram(p) {
		if len(seg.stmts) == 1 {
			// A single statement gains nothing from scheduling.
			if err := linear(seg.stmts); err != nil {
				return err
			}
		} else if len(seg.stmts) > 1 {
			present := map[string]bool{}
			for _, c := range tr.Cols {
				present[c.Name] = true
			}
			nodes, _, ok := resolveSegment(seg.stmts, 0, present, e.Target)
			if !ok {
				e.countSegment("linear")
				if err := linear(seg.stmts); err != nil {
					return err
				}
			} else {
				e.countSegment("parallel")
				ssp := e.Span.Child("dag-segment")
				ssp.SetInt("stmts", int64(len(seg.stmts)))
				err := e.runSegment(nodes, tr, te, maxOH, ssp)
				ssp.End()
				if err != nil {
					return err
				}
			}
		}
		if seg.barrier != nil {
			if err := linear([]Stmt{*seg.barrier}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Executor) countSegment(mode string) {
	if e.Metrics != nil {
		e.Metrics.Counter("catdb_dag_segments_total", "mode", mode).Inc()
	}
}

// runSegment executes one resolved segment: Kahn waves over the pool,
// then a statement-ordered merge of column adds/removes, deferred cap
// checks, and deferred test-side step applications. sp (nil when
// tracing is off) parents one dag-wave span per wave with dag-node
// children recorded from inside the workers.
func (e *Executor) runSegment(nodes []*dagNode, tr, te *data.Table, maxOH int, sp *obs.Span) error {
	n := len(nodes)
	colOf := make(map[string]*data.Column, len(tr.Cols))
	for _, c := range tr.Cols {
		colOf[c.Name] = c
	}
	indeg := make([]int, n)
	children := make([][]int, n)
	for j, nd := range nodes {
		for _, d := range nd.deps {
			indeg[j]++
			children[d.node] = append(children[d.node], j)
		}
	}
	outcomes := make([]nodeOutcome, n)
	done := make([]bool, n)
	dead := make([]bool, n) // a dependency failed; the node never runs
	var markDead func(j int)
	markDead = func(j int) {
		for _, ch := range children[j] {
			if !dead[ch] {
				dead[ch] = true
				markDead(ch)
			}
		}
	}
	waves := 0
	for {
		var ready []int
		for j := 0; j < n; j++ {
			if !done[j] && indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
		if len(ready) == 0 {
			break
		}
		waves++
		wsp := sp.Child("dag-wave")
		wsp.SetInt("ready", int64(len(ready)))
		// colOf is read concurrently below and only written between
		// waves, so node table construction inside workers is race-free.
		// Wave width borrows from the same budget nested sharders draw
		// on, so waves × shards never exceed the configured Workers.
		extra := e.budget.tryAcquire(len(ready) - 1)
		outs, _ := pool.Map(1+extra, len(ready), func(k int) (nodeOutcome, error) {
			j := ready[k]
			if dead[j] {
				return nodeOutcome{}, nil
			}
			nsp := wsp.Child("dag-node")
			nsp.SetStr("op", nodes[j].st.Op)
			nsp.SetInt("line", int64(nodes[j].st.Line))
			out := e.runDAGNode(nodes[j], tr.Name, colOf, maxOH)
			nsp.End()
			return out, nil
		})
		e.budget.release(extra)
		wsp.End()
		for k, j := range ready {
			done[j] = true
			for _, ch := range children[j] {
				indeg[ch]--
			}
			if dead[j] {
				continue
			}
			outcomes[j] = outs[k]
			if outs[k].err != nil {
				markDead(j)
				continue
			}
			for _, name := range outs[k].removes {
				delete(colOf, name)
			}
			for _, c := range outs[k].adds {
				colOf[c.Name] = c
			}
		}
	}
	e.recordDAGMetrics(nodes, outcomes, dead, waves)
	return e.mergeSegment(nodes, outcomes, dead, tr, te)
}

// runDAGNode executes one statement against a private table view that
// shares column objects with the live table. In-place column writes
// land directly (edges guarantee exclusive access); structural changes
// (adds/removes) stay private and are reported for the ordered merge.
func (e *Executor) runDAGNode(nd *dagNode, tableName string, colOf map[string]*data.Column, maxOH int) nodeOutcome {
	start := obs.Now()
	out := nodeOutcome{buf: &nodeBuffer{}}
	defer func() { out.seconds = obs.Since(start).Seconds() }()
	if err := e.policyCheck(nd.st); err != nil {
		out.err = err
		return out
	}
	// Deduplicated private column set, in footprint order.
	var cols []*data.Column
	seen := map[string]bool{}
	for _, name := range nd.refs.names() {
		if seen[name] {
			continue
		}
		seen[name] = true
		if c := colOf[name]; c != nil {
			cols = append(cols, c)
		}
	}
	ptab := &data.Table{Name: tableName, Cols: cols}
	// Snapshot names, not the slice: DropColumn splices the backing
	// array in place, so cols would alias post-exec contents.
	beforeNames := make([]string, len(cols))
	before := make(map[string]bool, len(cols))
	for i, c := range cols {
		beforeNames[i] = c.Name
		before[c.Name] = true
	}
	ctx := &execCtx{e: e, tr: ptab, maxOH: maxOH, node: out.buf, sh: e.shardFor(nd.spec)}
	if out.err = nd.spec.exec(e, nd.st, ctx); out.err != nil {
		return out
	}
	after := map[string]bool{}
	for _, c := range ptab.Cols {
		after[c.Name] = true
		if !before[c.Name] {
			out.adds = append(out.adds, c)
		}
	}
	for _, name := range beforeNames {
		if !after[name] {
			out.removes = append(out.removes, name)
		}
	}
	return out
}

// mergeSegment replays node outcomes in statement order: the first
// error (lowest statement index) is returned exactly as linear
// execution would raise it; column removals/additions rebuild the
// train table in the order linear execution would have produced; and
// deferred fitted steps apply to the test table in statement order.
func (e *Executor) mergeSegment(nodes []*dagNode, outcomes []nodeOutcome, dead []bool, tr, te *data.Table) error {
	names := make([]string, 0, len(tr.Cols))
	colOf := make(map[string]*data.Column, len(tr.Cols))
	for _, c := range tr.Cols {
		names = append(names, c.Name)
		colOf[c.Name] = c
	}
	for j, nd := range nodes {
		if dead[j] {
			// Unreachable: a dead node's failed ancestor has a smaller
			// statement index, so its error returned first.
			return rtErr(nd.st.Line, ErrBadOption, "internal: dependency of line %d failed", nd.st.Line)
		}
		o := outcomes[j]
		if o.err != nil {
			return o.err
		}
		if c := o.buf.cap; c != nil && len(names)+c.adds > maxEncodedFeatures {
			return capErr(c.line, c.kind, c.col)
		}
		for _, rm := range o.removes {
			delete(colOf, rm)
			for i, name := range names {
				if name == rm {
					names = append(names[:i], names[i+1:]...)
					break
				}
			}
		}
		for _, c := range o.adds {
			names = append(names, c.Name)
			colOf[c.Name] = c
		}
		for _, ds := range o.buf.steps {
			if err := e.recordAndApply(ds.step, te); err != nil {
				if ds.code == "" {
					return err
				}
				return rtErr(ds.line, ds.code, "%v", err)
			}
		}
	}
	cols := make([]*data.Column, len(names))
	for i, name := range names {
		cols[i] = colOf[name]
	}
	tr.Cols = cols
	return nil
}

// recordDAGMetrics books per-node and per-wave scheduler metrics.
// Counter values are deterministic at any worker count (the wave
// structure is a property of the DAG, not of the pool size); only the
// duration histograms vary run to run.
func (e *Executor) recordDAGMetrics(nodes []*dagNode, outcomes []nodeOutcome, dead []bool, waves int) {
	if e.Metrics == nil {
		return
	}
	e.Metrics.Counter("catdb_dag_waves_total").Add(int64(waves))
	for j, nd := range nodes {
		if dead[j] {
			continue
		}
		e.Metrics.Counter("catdb_dag_nodes_total", "op", nd.st.Op).Inc()
		e.Metrics.Histogram("catdb_dag_node_seconds", obs.DefBuckets, "op", nd.st.Op).Observe(outcomes[j].seconds)
	}
}
