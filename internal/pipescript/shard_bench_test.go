package pipescript

import (
	"fmt"
	"math/rand"
	"testing"

	"catdb/internal/bench/baseline"
	"catdb/internal/data"
)

// shardBenchTable builds a 4-column, rows-row table with injected
// missing cells: a deep elementwise chain over few columns is the worst
// case for statement-level DAG parallelism (everything serializes on
// column dependencies) and the best case for row sharding.
func shardBenchTable(rows int) *data.Table {
	rng := rand.New(rand.NewSource(23))
	tab := data.NewTable("shardbench")
	for c := 0; c < 3; c++ {
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = rng.NormFloat64()*float64(c+1) + 2.0
		}
		col := data.NewNumeric(fmt.Sprintf("num%d", c), vals)
		for i := c; i < rows; i += 101 {
			col.SetMissing(i)
		}
		tab.MustAddColumn(col)
	}
	cats := []string{" alpha", "Alpha", "beta ", "gamma", "delta"}
	vals := make([]string, rows)
	for i := range vals {
		vals[i] = cats[i%len(cats)]
	}
	tab.MustAddColumn(data.NewString("cat", vals))
	return tab
}

// BenchmarkShardElementwise measures row-sharded execution of a deep
// elementwise chain over a 1M-row table. The chain is column-dependent
// (each op consumes its predecessor's output), so the statement DAG
// cannot parallelize it — any speedup comes from the row-shard axis.
//
// `make bench` runs this twice: BENCH_BASELINE=shard (alias:
// BENCH_SHARD_MODE=serial) captures the serial row-loop baseline into
// BENCH_shard.json, then the default sharded pass records the parallel
// numbers against it.
func BenchmarkShardElementwise(b *testing.B) {
	const rows = 1_000_000
	base := shardBenchTable(rows)
	p, err := Parse(`pipeline "chain"
impute "num0" strategy=median
winsorize "num0"
log_transform "num0"
scale "num0" method=standard
impute "num1" strategy=mean
clip_outliers "num1" method=iqr factor=2.5
scale "num1" method=minmax
bin_numeric "num2" bins=16
dedup_values "cat"
onehot "cat"
`)
	if err != nil {
		b.Fatal(err)
	}
	shardRows := 0 // default chunk size
	if baseline.Lane("shard", "BENCH_SHARD_MODE", "serial") {
		shardRows = -1 // serial row loops
	}
	for _, workers := range []int{4} {
		name := fmt.Sprintf("rows=%d/workers=%d", rows, workers)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tr := base.Clone()
				te := base.Head(512)
				ex := &Executor{Seed: 1, AllowNoTrain: true, Workers: workers, ShardRows: shardRows}
				b.StartTimer()
				if _, err := ex.Execute(p, tr, te); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardBatchScore measures batched serving: one artifact is
// fitted up front, then each iteration transforms and scores a 500k-row
// batch through the fitted pipeline. The serial lane disables both the
// row sharder and the serving step-DAG; the default pass enables both,
// exercising the two parallelism axes together on the serving path.
func BenchmarkShardBatchScore(b *testing.B) {
	const batchRows = 500_000
	fitTab := shardBenchTable(20_000)
	labels := make([]string, 20_000)
	for i := range labels {
		labels[i] = []string{"no", "yes", "maybe"}[i%3]
	}
	fitTab.MustAddColumn(data.NewString("y", labels))
	p, err := Parse(`pipeline "score"
impute "num0" strategy=median
scale "num0" method=standard
impute "num1" strategy=mean
impute "num2" strategy=median
log_transform "num2"
dedup_values "cat"
onehot "cat"
train model=random_forest target="y" trees=15
`)
	if err != nil {
		b.Fatal(err)
	}
	tr, te := fitTab.Split(0.8, 7)
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, fp, err := ex.Fit(p, tr, te)
	if err != nil {
		b.Fatal(err)
	}
	batch := shardBenchTable(batchRows)
	serial := baseline.Lane("shard", "BENCH_SHARD_MODE", "serial")
	for _, workers := range []int{4} {
		name := fmt.Sprintf("batch=%d/workers=%d", batchRows, workers)
		b.Run(name, func(b *testing.B) {
			fp.Workers = workers
			if serial {
				fp.ShardRows, fp.DAG = -1, false
			} else {
				fp.ShardRows, fp.DAG = 0, true
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fp.Predict(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
