package pipescript

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"catdb/internal/data"
	"catdb/internal/obs"
)

// The shard sweep every equivalence test covers: chunk sizes from
// pathological (every row its own task) through default-ish to
// never-shards, crossed with pool sizes.
var (
	shardRowsSweep    = []int{1, 7, 4096, 1 << 30}
	shardWorkersSweep = []int{1, 2, 8}
)

// execShardWays runs the program with row sharding disabled (the serial
// baseline) and then across the full (shardRows, workers, dag) sweep,
// requiring bit-identical results and errors everywhere.
func execShardWays(t *testing.T, src string, mk func() (*data.Table, *data.Table), target string, task data.Task) (*Result, error) {
	t.Helper()
	p := mustParse(t, src)
	tr, te := mk()
	base := &Executor{Target: target, Task: task, Seed: 1, AllowNoTrain: true, ShardRows: -1, Workers: 1}
	wantRes, wantErr := base.Execute(p, tr, te)
	for _, dag := range []bool{false, true} {
		for _, sr := range shardRowsSweep {
			for _, w := range shardWorkersSweep {
				tr, te := mk()
				ex := &Executor{Target: target, Task: task, Seed: 1, AllowNoTrain: true,
					ShardRows: sr, Workers: w, DAG: dag}
				gotRes, gotErr := ex.Execute(p, tr, te)
				label := fmt.Sprintf("dag=%v shardRows=%d workers=%d", dag, sr, w)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: baseline err=%v sharded err=%v", label, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("%s: error mismatch\nbaseline: %v\nsharded:  %v", label, wantErr, gotErr)
					}
					continue
				}
				a, b := *wantRes, *gotRes
				a.Program, b.Program = nil, nil
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s: result mismatch\nbaseline: %+v\nsharded:  %+v", label, a, b)
				}
			}
		}
	}
	return wantRes, wantErr
}

func TestShardMatchesSerialFullPipeline(t *testing.T) {
	mk := func() (*data.Table, *data.Table) { return split(messyTable(600, 1), 7) }
	res, err := execShardWays(t, `pipeline "full"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
winsorize "num" lower=0.05 upper=0.95
log_transform "num"
scale "num" method=standard
train model=random_forest target="y" trees=15
evaluate metric=auto
`, mk, "y", data.Multiclass)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAUC <= 0 {
		t.Fatalf("expected a trained model, got %+v", res)
	}
}

func TestShardMatchesSerialEncodersAndBarriers(t *testing.T) {
	mk := func() (*data.Table, *data.Table) { return split(messyTable(500, 3), 5) }
	execShardWays(t, `pipeline "mixed"
dedup_values "cat"
hash_encode "cat" buckets=16
impute "num" strategy=mean
impute_all strategy=auto
bin_numeric "num" bins=4
clip_outliers "num" method=iqr factor=2.0
remove_outliers "num" method=iqr factor=4.0
drop_constant
train model=gbm target="y" rounds=8
`, mk, "y", data.Multiclass)
}

func TestShardMatchesSerialRegression(t *testing.T) {
	mk := func() (*data.Table, *data.Table) {
		n := 400
		rng := rand.New(rand.NewSource(9))
		a := make([]float64, n)
		b := make([]float64, n)
		addr := make([]string, n)
		y := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.Float64() * 10
			addr[i] = fmt.Sprintf("%d zone%d", 100+i%90, i%4)
			y[i] = 3*a[i] - b[i] + rng.NormFloat64()*0.1
		}
		tab := data.NewTable("reg")
		tab.MustAddColumn(data.NewNumeric("a", a))
		tab.MustAddColumn(data.NewNumeric("b", b))
		tab.MustAddColumn(data.NewString("addr", addr))
		tab.MustAddColumn(data.NewNumeric("y", y))
		return split(tab, 11)
	}
	execShardWays(t, `pipeline "reg"
split_composite "addr"
ordinal "addr_part"
target_encode "addr_num"
interaction "a" "b" op=product
log_transform "b"
scale "a" method=minmax
train model=linear_regression target="y"
`, mk, "y", data.Regression)
}

// Shard execution over CoW view inputs: SelectRows produces row-mapped
// views sharing slabs with the source; BeginShardWrite must gather them
// privately so the source table is untouched and results match serial.
func TestShardMatchesSerialOnCoWViews(t *testing.T) {
	source := messyTable(700, 6)
	mk := func() (*data.Table, *data.Table) {
		rows := make([]int, 0, 500)
		for i := 0; i < 500; i++ {
			rows = append(rows, (i*7)%700)
		}
		return split(source.SelectRows(rows), 13)
	}
	execShardWays(t, `pipeline "cow"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
scale "num" method=standard
train model=naive_bayes target="y"
`, mk, "y", data.Multiclass)
	// The shared source must not have absorbed any pipeline writes.
	if source.Col("num").MissingCount() == 0 {
		t.Fatal("source table mutated: injected missing cells disappeared")
	}
	if source.Col("cat").DistinctCount() <= 3 {
		t.Fatal("source table mutated: dirty categories were deduplicated in place")
	}
}

// Error-carrying pipelines must raise the identical first error (same
// line, code, message) at any shard setting, sharded or not, DAG or not.
func TestShardMatchesSerialErrors(t *testing.T) {
	for _, src := range []string{
		"pipeline \"e\"\nimpute \"nope\" strategy=median\ntrain target=\"y\"\n",
		"pipeline \"e\"\nscale \"cat\"\nscale \"lst\"\ntrain target=\"y\"\n",
		"pipeline \"e\"\nonehot \"cat\"\nscale \"lst\" method=standard\nkhot \"num\"\ntrain target=\"y\"\n",
		"pipeline \"e\"\ndrop \"y\"\ntrain target=\"y\"\n",
	} {
		mk := func() (*data.Table, *data.Table) { return split(messyTable(200, 2), 3) }
		if _, err := execShardWays(t, src, mk, "y", data.Multiclass); err == nil {
			t.Fatalf("expected an error from %q", src)
		}
	}
}

// Fitted artifacts must serialize byte-identically at any shard setting.
func TestShardFitArtifactIdentical(t *testing.T) {
	src := `pipeline "fit"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
scale "num" method=standard
train model=random_forest target="y" trees=10
`
	p := mustParse(t, src)
	tr, te := split(messyTable(400, 5), 9)
	base := &Executor{Target: "y", Task: data.Multiclass, Seed: 2, ShardRows: -1}
	_, wantFP, err := base.Fit(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(wantFP)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range shardRowsSweep {
		for _, w := range shardWorkersSweep {
			ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 2, ShardRows: sr, Workers: w}
			_, gotFP, err := ex.Fit(p, tr, te)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(gotFP)
			if err != nil {
				t.Fatal(err)
			}
			if string(want) != string(got) {
				t.Fatalf("shardRows=%d workers=%d: artifact differs\nbaseline: %s\nsharded:  %s", sr, w, want, got)
			}
		}
	}
}

// Randomized programs: row sharding must reproduce serial execution
// (results and errors) whatever the program shape.
func TestShardPropertyRandomPrograms(t *testing.T) {
	mk := func() (*data.Table, *data.Table) {
		n := 240
		rng := rand.New(rand.NewSource(42))
		alpha := make([]float64, n)
		beta := make([]float64, n)
		gamma := make([]string, n)
		delta := make([]string, n)
		y := make([]string, n)
		for i := 0; i < n; i++ {
			alpha[i] = rng.NormFloat64()
			beta[i] = float64(i % 5)
			gamma[i] = []string{"x", "y", "z"}[i%3]
			delta[i] = []string{"p", "q"}[i%2]
			y[i] = []string{"no", "yes"}[i%2]
		}
		tab := data.NewTable("prop")
		tab.MustAddColumn(data.NewNumeric("alpha", alpha))
		tab.MustAddColumn(data.NewNumeric("beta", beta))
		tab.MustAddColumn(data.NewString("gamma", gamma))
		tab.MustAddColumn(data.NewString("delta", delta))
		tab.MustAddColumn(data.NewString("y", y))
		for i := 0; i < n; i += 13 {
			tab.Col("alpha").SetMissing(i)
		}
		return split(tab, 17)
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := genProgram(rng)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			execShardWays(t, src, mk, "y", data.Binary)
		})
	}
}

// Shard task counters depend only on (row count, shardRows) — never on
// the worker count — so observability stays deterministic under any
// parallelism.
func TestShardMetricsDeterministic(t *testing.T) {
	src := `pipeline "m"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
scale "num" method=standard
train model=naive_bayes target="y"
`
	p := mustParse(t, src)
	counters := func(w int) map[string]int64 {
		tr, te := split(messyTable(900, 4), 5)
		reg := obs.NewRegistry()
		ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1, ShardRows: 64, Workers: w, Metrics: reg}
		if _, err := ex.Execute(p, tr, te); err != nil {
			t.Fatal(err)
		}
		return map[string]int64{
			"impute": reg.Counter("catdb_shard_tasks_total", "op", "impute").Value(),
			"dedup":  reg.Counter("catdb_shard_tasks_total", "op", "dedup_values").Value(),
			"onehot": reg.Counter("catdb_shard_tasks_total", "op", "onehot").Value(),
			"scale":  reg.Counter("catdb_shard_tasks_total", "op", "scale").Value(),
			"matrix": reg.Counter("catdb_shard_tasks_total", "op", "matrix").Value(),
		}
	}
	want := counters(1)
	for op, v := range want {
		if v == 0 {
			t.Fatalf("op %s recorded no shard tasks at shardRows=64: %+v", op, want)
		}
	}
	for _, w := range shardWorkersSweep[1:] {
		if got := counters(w); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: shard task counters diverge\nwant %+v\ngot  %+v", w, want, got)
		}
	}
	// Sharding disabled must record nothing.
	tr, te := split(messyTable(900, 4), 5)
	reg := obs.NewRegistry()
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1, ShardRows: -1, Workers: 4, Metrics: reg}
	if _, err := ex.Execute(p, tr, te); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("catdb_shard_tasks_total", "op", "impute").Value(); got != 0 {
		t.Fatalf("ShardRows=-1 still recorded %d shard tasks", got)
	}
}

// Every registered op carries a sharding class consistent with its pure
// flag, and the elementwise set is exactly the ops whose handlers route
// row loops through the sharder.
func TestOpShardClasses(t *testing.T) {
	elementwise := map[string]bool{
		"impute": true, "impute_all": true, "clip_outliers": true, "scale": true,
		"onehot": true, "khot": true, "hash_encode": true, "ordinal": true,
		"split_composite": true, "extract_token": true, "dedup_values": true,
		"bin_numeric": true, "log_transform": true, "interaction": true,
		"winsorize": true, "target_encode": true,
	}
	seen := 0
	for name, spec := range opRegistry {
		switch spec.class {
		case opPure, opElementwise, opStatefulFit, opWholeTable:
		default:
			t.Fatalf("op %q has an invalid shard class %d", name, spec.class)
		}
		if spec.pure != (spec.class == opPure) {
			t.Fatalf("op %q: pure=%v but class=%d", name, spec.pure, spec.class)
		}
		if elementwise[name] != (spec.class == opElementwise) {
			t.Fatalf("op %q: elementwise classification mismatch (class=%d)", name, spec.class)
		}
		if spec.class == opElementwise {
			seen++
		}
	}
	if seen != len(elementwise) {
		t.Fatalf("expected %d elementwise ops, registry has %d", len(elementwise), seen)
	}
}

// The serving path: Transform and Predict must be bit-identical across
// shard settings, worker counts, and the step-DAG toggle.
func TestServingShardAndDAGIdentical(t *testing.T) {
	src := `pipeline "serve"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
scale "num" method=standard
train model=random_forest target="y" trees=10
`
	p := mustParse(t, src)
	tr, te := split(messyTable(500, 8), 3)
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 4}
	_, fp, err := ex.Fit(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	batch := messyTable(400, 9)
	batch.DropColumn("y")

	fp.ShardRows, fp.Workers, fp.DAG = -1, 1, false
	wantT, err := fp.Transform(batch)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := fp.Predict(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, dag := range []bool{false, true} {
		for _, sr := range shardRowsSweep {
			for _, w := range shardWorkersSweep {
				fp.ShardRows, fp.Workers, fp.DAG = sr, w, dag
				gotT, err := fp.Transform(batch)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("dag=%v shardRows=%d workers=%d", dag, sr, w)
				if got, want := gotT.ColumnNames(), wantT.ColumnNames(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: transformed columns %v, want %v", label, got, want)
				}
				for _, name := range wantT.ColumnNames() {
					wc, gc := wantT.Col(name), gotT.Col(name)
					for i := 0; i < wc.Len(); i++ {
						if wc.ValueString(i) != gc.ValueString(i) || wc.IsMissing(i) != gc.IsMissing(i) {
							t.Fatalf("%s: column %q row %d differs (%q vs %q)",
								label, name, i, wc.ValueString(i), gc.ValueString(i))
						}
					}
				}
				gotP, err := fp.Predict(batch)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wantP, gotP) {
					t.Fatalf("%s: predictions differ", label)
				}
			}
		}
	}
}

// The serving step-DAG must surface a step failure exactly as the
// linear loop does (same step index, op, wrapped error), picking the
// first failing step in step order.
func TestServingDAGErrorMatchesLinear(t *testing.T) {
	fp := &FittedPipeline{
		Version: ArtifactVersion,
		Steps: []FittedStep{
			{Op: "impute", Col: "a", Num: 1},
			{Op: "no_such_op", Col: "b"},
			{Op: "no_such_op", Col: "c"},
		},
	}
	tab := data.NewTable("t")
	tab.MustAddColumn(data.NewNumeric("a", []float64{1, 2}))
	tab.MustAddColumn(data.NewNumeric("b", []float64{1, 2}))
	tab.MustAddColumn(data.NewNumeric("c", []float64{1, 2}))
	fp.DAG = false
	_, wantErr := fp.Transform(tab)
	if wantErr == nil {
		t.Fatal("expected the linear path to fail on the unknown step")
	}
	fp.DAG = true
	_, gotErr := fp.Transform(tab)
	if gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("step-DAG error mismatch\nlinear: %v\ndag:    %v", wantErr, gotErr)
	}
}
