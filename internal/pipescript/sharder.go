package pipescript

import (
	"sync"
	"time"

	"catdb/internal/data"
	"catdb/internal/obs"
	"catdb/internal/pool"
)

// This file is the row-shard execution engine: the second parallelism
// axis next to the statement DAG (schedule.go). Elementwise op bodies —
// loops where output row i depends only on input row i — never touch
// the pool directly (`make lint-shard` enforces it); they hand their
// per-row loop to a sharder, which splits the row range into chunks of
// at most shardRows rows and fans the chunks out over internal/pool.
//
// Determinism contract: whether a loop shards, and into how many
// tasks, depends only on (row count, shardRows) — never on the worker
// count — so the catdb_shard_tasks_total counters are identical at any
// Workers setting, and every shard writes a disjoint row range of a
// column prepared with BeginShardWrite (see internal/data/shard.go),
// so results are bit-identical to the serial loop.
//
// Oversubscription contract: one workerBudget is shared per execution
// between the DAG wave scheduler and every nested sharder. The caller
// of a fan-out always runs one chunk itself (its own slot) and may
// borrow up to budget.free extra slots, so waves × shards never exceed
// the executor's Workers in total, even when shard fan-outs fire
// inside concurrently running DAG nodes.

// defaultShardRows is the chunk size elementwise loops shard at when
// the caller does not set ShardRows. Columns at or under this length
// run serially — the fan-out overhead only pays for itself on slabs
// well past L2 size.
const defaultShardRows = 32768

// workerBudget is a non-blocking counting semaphore over "extra" worker
// slots. It is created with workers-1 free slots: the executing
// goroutine always holds one implicit slot, and a fan-out that borrows
// k extras runs on 1+k pool workers while the borrower blocks, keeping
// the process-wide total at or below the configured worker count.
type workerBudget struct {
	mu   sync.Mutex
	free int
}

// newWorkerBudget sizes a budget for the given worker count
// (<= 0 means pool.DefaultWorkers()).
func newWorkerBudget(workers int) *workerBudget {
	if workers <= 0 {
		workers = pool.DefaultWorkers()
	}
	return &workerBudget{free: workers - 1}
}

// tryAcquire takes up to max free slots and returns how many it got
// (possibly zero). It never blocks — a starved fan-out degrades to the
// caller running its chunks serially, which is always correct.
func (b *workerBudget) tryAcquire(max int) int {
	if b == nil || max <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.free
	if n > max {
		n = max
	}
	b.free -= n
	return n
}

// release returns n slots to the budget.
func (b *workerBudget) release(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.free += n
	b.mu.Unlock()
}

// sharder fans elementwise row loops out over the pool. A nil sharder
// runs every body serially in the caller — helpers never need to
// special-case the serial path.
type sharder struct {
	shardRows int
	budget    *workerBudget
	metrics   *obs.Registry
}

// newSharder builds the per-execution sharder. shardRows == 0 selects
// defaultShardRows; shardRows < 0 disables row sharding entirely (nil
// sharder), which is the serial baseline the bench two-pass captures.
// The budget is shared with the DAG wave scheduler by the caller.
func newSharder(shardRows int, budget *workerBudget, metrics *obs.Registry) *sharder {
	if shardRows < 0 {
		return nil
	}
	if shardRows == 0 {
		shardRows = defaultShardRows
	}
	return &sharder{shardRows: shardRows, budget: budget, metrics: metrics}
}

// transform runs an elementwise in-place body over col. Short columns
// (and a nil sharder) run the body directly on the live column; long
// columns are promoted once (BeginShardWrite), the body runs on
// disjoint ShardViews across pool workers, and the stats version bumps
// once after the join (EndShardWrite). The body must write only
// through row i of the view it is given.
func (sh *sharder) transform(op string, col *data.Column, body func(v *data.Column)) {
	if sh == nil || col.Len() <= sh.shardRows {
		body(col)
		return
	}
	start := obs.Now()
	ranges := data.ShardRanges(col.Len(), sh.shardRows)
	col.BeginShardWrite()
	extra := sh.budget.tryAcquire(len(ranges) - 1)
	pool.Each(1+extra, len(ranges), func(k int) error {
		body(col.ShardView(ranges[k][0], ranges[k][1]))
		return nil
	})
	sh.budget.release(extra)
	col.EndShardWrite()
	sh.record(op, len(ranges), start)
}

// ranges runs a disjoint-write fill loop over [0, n): builders that
// populate fresh output slabs (one-hot indicators, feature matrices,
// keep masks) receive [lo, hi) chunks and must write only indices
// inside their chunk. Reads of existing columns are safe to share —
// every accessor used here is a pure read.
func (sh *sharder) ranges(op string, n int, body func(lo, hi int)) {
	if sh == nil || n <= sh.shardRows {
		body(0, n)
		return
	}
	start := obs.Now()
	ranges := data.ShardRanges(n, sh.shardRows)
	extra := sh.budget.tryAcquire(len(ranges) - 1)
	pool.Each(1+extra, len(ranges), func(k int) error {
		body(ranges[k][0], ranges[k][1])
		return nil
	})
	sh.budget.release(extra)
	sh.record(op, len(ranges), start)
}

// record books the per-op shard metrics. Task counts depend only on
// row counts and shardRows, so they are deterministic at any worker
// count; only the duration histogram values vary run to run.
func (sh *sharder) record(op string, tasks int, start time.Time) {
	if sh.metrics == nil {
		return
	}
	sh.metrics.Counter("catdb_shard_tasks_total", "op", op).Add(int64(tasks))
	sh.metrics.Histogram("catdb_shard_seconds", obs.DefBuckets, "op", op).Observe(obs.Since(start).Seconds())
}
