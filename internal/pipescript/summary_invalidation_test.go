package pipescript

import (
	"math"
	"testing"

	"catdb/internal/data"
)

// Every op that rewrites column cells must leave the memoized summaries
// consistent with a from-scratch recompute (a Clone starts with an empty
// cache). Invalidation is automatic now — the setters bump the version —
// but warming the cache before each op keeps these tests honest: a write
// path that bypassed the accessors would only show up against a warm
// cache.

func warmStats(cols ...*data.Column) {
	for _, c := range cols {
		_ = c.MissingCount()
		_ = c.DistinctCount()
		if c.Kind.IsNumeric() {
			_ = c.NumericStats()
		}
	}
}

func assertSummaryFresh(t *testing.T, c *data.Column, ctx string) {
	t.Helper()
	fresh := c.Clone()
	if got, want := c.MissingCount(), fresh.MissingCount(); got != want {
		t.Errorf("%s: MissingCount = %d, fresh recompute = %d (stale summary)", ctx, got, want)
	}
	if got, want := c.DistinctCount(), fresh.DistinctCount(); got != want {
		t.Errorf("%s: DistinctCount = %d, fresh recompute = %d (stale summary)", ctx, got, want)
	}
	got, want := c.NumericStats(), fresh.NumericStats()
	same := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	if got.Count != want.Count || !same(got.Mean, want.Mean) || !same(got.Min, want.Min) ||
		!same(got.Max, want.Max) || !same(got.Median, want.Median) {
		t.Errorf("%s: NumericStats = %+v, fresh recompute = %+v (stale summary)", ctx, got, want)
	}
}

func numColWithMissing() *data.Column {
	c := data.NewNumeric("x", []float64{1, 50, 3, 4, 5, 6, 7, 8})
	c.SetMissing(2)
	return c
}

func TestImputeInvalidatesSummary(t *testing.T) {
	c := numColWithMissing()
	warmStats(c)
	num, str, err := imputeValue(c, "median")
	if err != nil {
		t.Fatal(err)
	}
	applyImpute(nil, c, num, str)
	if c.MissingCount() != 0 {
		t.Fatal("impute left missing count stale")
	}
	assertSummaryFresh(t, c, "applyImpute")
}

func TestClipInvalidatesSummary(t *testing.T) {
	c := numColWithMissing()
	warmStats(c)
	clipColumn(nil, c, 2, 6)
	if got := c.NumericStats().Max; got != 6 {
		t.Fatalf("max after clip = %g, want 6 (stale summary)", got)
	}
	assertSummaryFresh(t, c, "clipColumn")
}

func TestScaleInvalidatesSummary(t *testing.T) {
	c := numColWithMissing()
	warmStats(c)
	sp, err := fitScale(c, "standard")
	if err != nil {
		t.Fatal(err)
	}
	sp.apply(nil, c)
	if got := c.NumericStats().Mean; math.Abs(got) > 1e-9 {
		t.Fatalf("mean after standard scale = %g, want ~0 (stale summary)", got)
	}
	assertSummaryFresh(t, c, "scale")
}

func TestExtractTokenInvalidatesSummary(t *testing.T) {
	c := data.NewString("s", []string{"red car fast", "blue car slow", "red car fast"})
	warmStats(c)
	extractToken(nil, c)
	assertSummaryFresh(t, c, "extractToken")
}

func TestApplyMappingInvalidatesSummary(t *testing.T) {
	c := data.NewString("s", []string{"RED", "red", "blue"})
	warmStats(c)
	ApplyValueMapping(c, map[string]string{"RED": "red"})
	if got := c.DistinctCount(); got != 2 {
		t.Fatalf("distinct after mapping = %d, want 2 (stale summary)", got)
	}
	assertSummaryFresh(t, c, "applyMapping")
}

func TestSplitCompositeInvalidatesSummary(t *testing.T) {
	tab := data.NewTable("t")
	tab.MustAddColumn(data.NewString("code", []string{"ab 1", "cd 2", "ab 3"}))
	warmStats(tab.Col("code"))
	if err := splitComposite(nil, tab, "code", "code_part", "code_num"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"code_part", "code_num"} {
		c := tab.Col(name)
		if c == nil {
			t.Fatalf("split column %q missing", name)
		}
		assertSummaryFresh(t, c, "splitComposite "+name)
	}
}

func TestRebalanceInvalidatesSummary(t *testing.T) {
	tab := data.NewTable("t")
	n := 60
	x := make([]float64, n)
	y := make([]string, n)
	for i := range x {
		x[i] = float64(i % 5)
		if i < 50 {
			y[i] = "maj"
		} else {
			y[i] = "min"
		}
	}
	tab.MustAddColumn(data.NewNumeric("x", x))
	tab.MustAddColumn(data.NewString("y", y))
	warmStats(tab.Col("x"), tab.Col("y"))
	if err := rebalanceADASYN(tab, "y", 3); err != nil {
		t.Fatal(err)
	}
	for _, c := range tab.Cols {
		assertSummaryFresh(t, c, "rebalanceADASYN "+c.Name)
	}
}

func TestAugmentRegressionInvalidatesSummary(t *testing.T) {
	tab := data.NewTable("t")
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) * 2
	}
	tab.MustAddColumn(data.NewNumeric("x", x))
	tab.MustAddColumn(data.NewNumeric("y", y))
	warmStats(tab.Col("x"), tab.Col("y"))
	if err := augmentRegression(tab, "y", 1.5, 3); err != nil {
		t.Fatal(err)
	}
	for _, c := range tab.Cols {
		assertSummaryFresh(t, c, "augmentRegression "+c.Name)
	}
}

func TestExtraOpsInvalidateSummary(t *testing.T) {
	mk := func() (*data.Table, *data.Table) {
		tr := data.NewTable("tr")
		tr.MustAddColumn(data.NewNumeric("x", []float64{1, 2, 3, 4, 5, 6, 7, 80}))
		te := data.NewTable("te")
		te.MustAddColumn(data.NewNumeric("x", []float64{2, 3, 90}))
		return tr, te
	}
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	run := func(st Stmt, tr, te *data.Table) error {
		trained := false
		return ex.execStmt(st, tr, te, 64, &Result{}, &trained)
	}

	tr, te := mk()
	warmStats(tr.Col("x"), te.Col("x"))
	if err := run(Stmt{Op: "bin_numeric", Args: []string{"x"}, KV: map[string]string{"bins": "4"}}, tr, te); err != nil {
		t.Fatalf("bin_numeric: %v", err)
	}
	assertSummaryFresh(t, tr.Col("x"), "bin_numeric train")
	assertSummaryFresh(t, te.Col("x"), "bin_numeric test")

	tr, te = mk()
	warmStats(tr.Col("x"), te.Col("x"))
	if err := run(Stmt{Op: "log_transform", Args: []string{"x"}}, tr, te); err != nil {
		t.Fatalf("log_transform: %v", err)
	}
	assertSummaryFresh(t, tr.Col("x"), "log_transform train")
	assertSummaryFresh(t, te.Col("x"), "log_transform test")

	tr, te = mk()
	warmStats(tr.Col("x"), te.Col("x"))
	if err := run(Stmt{Op: "winsorize", Args: []string{"x"}, KV: map[string]string{"lower": "0.1", "upper": "0.9"}}, tr, te); err != nil {
		t.Fatalf("winsorize: %v", err)
	}
	assertSummaryFresh(t, tr.Col("x"), "winsorize train")
	assertSummaryFresh(t, te.Col("x"), "winsorize test")
}
