package pipescript

import (
	"fmt"

	"catdb/internal/data"
	"catdb/internal/obs"
)

// This file is the transform/serving half of the fit/transform split:
// it applies a FittedPipeline artifact to incoming row batches and
// scores them. It deliberately has no notion of a label column — every
// parameter was fitted and recorded during Fit, and `make verify`
// lint-checks that nothing here references the executor's label field.

// Artifact error codes, reported when applying or scoring an artifact
// fails. They are distinct from pipeline RuntimeError codes: these are
// serving-contract violations, not pipeline-authoring mistakes.
const (
	ErrArtifactVersion = "E_ARTIFACT_VERSION" // artifact from another schema version
	ErrArtifactModel   = "E_ARTIFACT_MODEL"   // artifact has no (or a corrupt) model
	ErrFeatureAbsent   = "E_FEATURE_ABSENT"   // fitted feature column missing after transform
	ErrFeatureType     = "E_FEATURE_TYPE"     // fitted feature column is not numeric
	ErrFeatureNaN      = "E_FEATURE_NAN"      // fitted feature column has missing values
	ErrStepFailed      = "E_STEP_FAILED"      // a recorded step failed to apply
)

// ArtifactError is a serving-contract failure with a machine-readable
// category, so callers can distinguish schema drift in incoming rows
// from corrupt artifacts.
type ArtifactError struct {
	Code string
	Msg  string
}

// Error implements the error interface.
func (e *ArtifactError) Error() string {
	return fmt.Sprintf("pipescript: artifact error [%s]: %s", e.Code, e.Msg)
}

func artErr(code, format string, args ...interface{}) *ArtifactError {
	return &ArtifactError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// transformBuckets extends the default latency bounds downward: per-stage
// transform work and single-row predictions sit well under a millisecond.
var transformBuckets = append([]float64{0.00001, 0.00005, 0.0001, 0.0005}, obs.DefBuckets...)

// apply applies one recorded step to a table. Columns absent from the
// batch are skipped, matching how the executor treats the evaluation
// split; this is the single implementation both paths share. The
// sharder routes elementwise row loops over the pool (nil = serial);
// results are bit-identical either way.
func (s *FittedStep) apply(sh *sharder, t *data.Table) error {
	switch s.Op {
	case "impute":
		if c := t.Col(s.Col); c != nil {
			applyImpute(sh, c, s.Num, s.Str)
		}
	case "clip":
		if c := t.Col(s.Col); c != nil {
			clipColumn(sh, c, s.Lo, s.Hi)
		}
	case "scale":
		if c := t.Col(s.Col); c != nil {
			scaleParams{method: s.Method, a: s.A, b: s.B}.apply(sh, c)
		}
	case "onehot":
		if t.Col(s.Col) != nil {
			return oneHot(sh, t, s.Col, s.Cats)
		}
	case "khot":
		if t.Col(s.Col) != nil {
			return kHot(sh, t, s.Col, s.Cats)
		}
	case "hash_encode":
		if t.Col(s.Col) != nil {
			return hashEncode(sh, t, s.Col, s.Buckets)
		}
	case "ordinal":
		if t.Col(s.Col) != nil {
			return ordinalEncode(sh, t, s.Col, s.Mapping)
		}
	case "drop":
		for _, name := range s.Cols {
			t.DropColumn(name)
		}
	case "split_composite":
		if t.Col(s.Col) != nil {
			return splitComposite(sh, t, s.Col, s.Name, s.NameB)
		}
	case "extract_token":
		if c := t.Col(s.Col); c != nil {
			extractToken(sh, c)
		}
	case "dedup_values":
		if c := t.Col(s.Col); c != nil {
			byNormal := map[string]string{}
			for raw, canon := range s.ValueMap {
				byNormal[NormalizeValue(raw)] = canon
			}
			applyMapping(sh, c, s.ValueMap, byNormal)
		}
	case "bin_numeric":
		if c := t.Col(s.Col); c != nil {
			binifyColumn(sh, c, s.Edges)
		}
	case "log_transform":
		if c := t.Col(s.Col); c != nil {
			logTransformColumn(sh, c)
		}
	case "interaction":
		return buildInteraction(sh, t, s.Col, s.ColB, s.Method, s.Name)
	case "target_encode":
		if t.Col(s.Col) != nil {
			return smoothedMeanEncode(sh, t, s.Col, s.Sums, s.Counts, s.Global)
		}
	default:
		return fmt.Errorf("unknown fitted step %q", s.Op)
	}
	return nil
}

// sharderFor builds the per-call row sharder the serving path uses:
// the same engine the executor runs, sized by the artifact's runtime
// knobs. Each call gets a fresh worker budget — serving calls are
// independent, so there is no cross-call budget to share beyond the
// pool itself.
func (fp *FittedPipeline) sharderFor() *sharder {
	return newSharder(fp.ShardRows, newWorkerBudget(fp.Workers), fp.Metrics)
}

// Transform applies the recorded preprocessing steps to a clone of t,
// returning the feature-space view of the batch. The input table is
// never mutated. With DAG set, independent steps run as scheduled
// waves (transform_dag.go); either way elementwise row loops shard
// over the pool, and the output is bit-identical to the serial loop.
func (fp *FittedPipeline) Transform(t *data.Table) (*data.Table, error) {
	out := t.Clone()
	// One budget spans both parallelism axes of this call: step waves
	// and the row shards nested inside them never oversubscribe Workers.
	budget := newWorkerBudget(fp.Workers)
	sh := newSharder(fp.ShardRows, budget, fp.Metrics)
	if fp.DAG && len(fp.Steps) > 1 {
		if handled, err := fp.transformDAG(sh, budget, out); handled {
			return out, err
		}
	}
	for i := range fp.Steps {
		step := &fp.Steps[i]
		start := obs.Now()
		if err := step.apply(sh, out); err != nil {
			return nil, artErr(ErrStepFailed, "step %d (%s on %q): %v", i, step.Op, step.Col, err)
		}
		// Nil-registry calls are free, so no conditional is needed here.
		fp.Metrics.Histogram("catdb_transform_stage_seconds", transformBuckets,
			"op", step.Op).Observe(obs.Since(start).Seconds())
	}
	return out, nil
}

// Predictions is the output of scoring a row batch with an artifact.
type Predictions struct {
	Rows    int
	Task    string   // binary | multiclass | regression
	Classes []string // classification label vocabulary, artifact order
	// Values holds the regression prediction per row, or the predicted
	// class index (as float64) for classification.
	Values []float64
	// Labels and Proba are classification-only: the predicted label and
	// the normalized class distribution per row.
	Labels []string
	Proba  [][]float64
}

// liveModel reconstructs (once) the model the artifact carries.
func (fp *FittedPipeline) liveModel() (any, error) {
	if fp.model != nil {
		return fp.model, nil
	}
	m, err := fp.Model.Model(fp.Workers)
	if err != nil {
		return nil, artErr(ErrArtifactModel, "%v", err)
	}
	fp.model = m
	return m, nil
}

// Predict transforms a row batch and scores it with the fitted model.
// Incoming rows must contain every raw column the recorded steps expect;
// after transformation each fitted feature column must exist, be
// numeric, and be complete — violations return an *ArtifactError with a
// specific code instead of silently skewed scores (the strict version of
// the zero-fill contract matrixAligned applies during fitting).
func (fp *FittedPipeline) Predict(t *data.Table) (*Predictions, error) {
	start := obs.Now()
	p, err := fp.predict(t)
	fp.Metrics.Histogram("catdb_predict_seconds", transformBuckets).Observe(obs.Since(start).Seconds())
	if err != nil {
		code := "E_UNKNOWN"
		if ae, ok := err.(*ArtifactError); ok {
			code = ae.Code
		}
		fp.Metrics.Counter("catdb_predict_errors_total", "code", code).Inc()
	} else {
		fp.Metrics.Counter("catdb_predict_rows_total").Add(int64(p.Rows))
		fp.Metrics.Counter("catdb_predict_batches_total").Inc()
	}
	return p, err
}

func (fp *FittedPipeline) predict(t *data.Table) (*Predictions, error) {
	if fp.Version != ArtifactVersion {
		return nil, artErr(ErrArtifactVersion,
			"artifact version %d, this build reads version %d", fp.Version, ArtifactVersion)
	}
	if fp.Model == nil {
		return nil, artErr(ErrArtifactModel, "artifact carries no model")
	}
	tt, err := fp.Transform(t)
	if err != nil {
		return nil, err
	}
	for _, name := range fp.Features {
		c := tt.Col(name)
		if c == nil {
			return nil, artErr(ErrFeatureAbsent,
				"fitted feature %q is missing from the transformed batch (schema drift?)", name)
		}
		if !c.Kind.IsNumeric() {
			return nil, artErr(ErrFeatureType, "fitted feature %q is %s, want numeric", name, c.Kind)
		}
		if c.MissingCount() > 0 {
			return nil, artErr(ErrFeatureNaN,
				"fitted feature %q has %d missing values in the batch", name, c.MissingCount())
		}
	}
	X, _ := matrixAligned(fp.sharderFor(), tt, fp.Features)
	m, err := fp.liveModel()
	if err != nil {
		return nil, err
	}
	out := &Predictions{Rows: len(X), Task: fp.Task, Classes: fp.Classes}
	if fp.Task == data.Regression.String() {
		reg, ok := m.(regressorIface)
		if !ok {
			return nil, artErr(ErrArtifactModel, "model kind %q cannot do regression", fp.Model.Kind)
		}
		out.Values = reg.Predict(X)
		return out, nil
	}
	clf, ok := m.(classifierIface)
	if !ok {
		return nil, artErr(ErrArtifactModel, "model kind %q cannot classify", fp.Model.Kind)
	}
	out.Proba = clf.Proba(X)
	out.Values = make([]float64, len(out.Proba))
	out.Labels = make([]string, len(out.Proba))
	for i, row := range out.Proba {
		idx := argmax(row)
		out.Values[i] = float64(idx)
		if idx < len(fp.Classes) {
			out.Labels[i] = fp.Classes[idx]
		}
	}
	return out, nil
}
