package pipescript

import (
	"catdb/internal/data"
	"catdb/internal/obs"
	"catdb/internal/pool"
)

// This file schedules a fitted pipeline's recorded steps as dependency
// waves at serve time — the serving twin of schedule.go. Unlike the
// fit-time DAG (which must reason about data-dependent encoder outputs
// via prefixes), every recorded step's output columns are fully static:
// the encoder vocabularies were fitted and frozen into the artifact, so
// the whole plan resolves exactly against the incoming batch's column
// set. Steps run against private table views sharing column objects
// with the batch clone; structural changes merge back in step order, so
// the transformed table, per-stage metrics, and the first error are
// bit-identical to the linear loop at any worker count. Resolution
// falls back to the linear path (handled=false) whenever an added
// column name would collide — the linear loop then raises the real
// duplicate-column error in step order.

// fittedNode is one schedulable recorded step.
type fittedNode struct {
	idx  int // step index (error-ordering key)
	step *FittedStep
	refs colRefs
	deps []int // earlier nodes this one must wait for
}

// stepRefs computes the column footprint of a recorded step given the
// columns present when it runs. Steps whose source column is absent
// from the batch are no-ops (apply skips them), so their footprint is
// empty. ok=false means the op is unknown and the plan cannot be built.
func stepRefs(s *FittedStep, present map[string]bool) (colRefs, bool) {
	var r colRefs
	switch s.Op {
	case "impute", "clip", "scale", "extract_token", "dedup_values",
		"bin_numeric", "log_transform":
		if present[s.Col] {
			r.writes = []string{s.Col}
		}
	case "onehot", "khot":
		if present[s.Col] {
			r.removes = []string{s.Col}
			for _, cat := range s.Cats {
				r.adds = append(r.adds, encodedName(s.Col, cat))
			}
		}
	case "hash_encode":
		if present[s.Col] {
			r.removes = []string{s.Col}
			r.adds = []string{s.Col + "__hash"}
		}
	case "ordinal":
		if present[s.Col] {
			r.removes = []string{s.Col}
			r.adds = []string{s.Col + "__ord"}
		}
	case "drop":
		for _, name := range s.Cols {
			if present[name] {
				r.removes = append(r.removes, name)
			}
		}
	case "split_composite":
		if present[s.Col] {
			r.removes = []string{s.Col}
			r.adds = []string{s.Name, s.NameB}
		}
	case "interaction":
		// buildInteraction is a no-op unless both sources exist.
		if present[s.Col] && present[s.ColB] {
			r.reads = []string{s.Col, s.ColB}
			r.adds = []string{s.Name}
		}
	case "target_encode":
		if present[s.Col] {
			r.removes = []string{s.Col}
			r.adds = []string{s.Col + "__tenc"}
		}
	default:
		return r, false
	}
	return r, true
}

// resolveSteps simulates the linear application of the recorded steps
// over the batch's actual columns and derives ordering edges. ok=false
// forces the linear path.
func resolveSteps(steps []FittedStep, t *data.Table) ([]*fittedNode, bool) {
	sim := make(map[string]bool, len(t.Cols))
	for _, c := range t.Cols {
		sim[c.Name] = true
	}
	nodes := make([]*fittedNode, 0, len(steps))
	for i := range steps {
		s := &steps[i]
		refs, ok := stepRefs(s, sim)
		if !ok {
			return nil, false
		}
		for _, name := range refs.removes {
			delete(sim, name)
		}
		for _, name := range refs.adds {
			if sim[name] {
				// Adding over an existing (or same-step duplicate) name
				// must raise the table's duplicate-column error exactly
				// where the linear loop would — run linearly.
				return nil, false
			}
			sim[name] = true
		}
		nd := &fittedNode{idx: i, step: s, refs: refs}
		for j, prev := range nodes {
			if _, hit := refsConflict(prev.refs, nd.refs); hit {
				nd.deps = append(nd.deps, j)
			}
		}
		nodes = append(nodes, nd)
	}
	return nodes, true
}

// stepOutcome is everything one step execution produced.
type stepOutcome struct {
	err     error
	adds    []*data.Column // columns the step created, in creation order
	removes []string       // columns the step dropped, in original order
	seconds float64
}

// transformDAG applies the recorded steps as Kahn waves over the pool,
// mutating t in place. handled=false means the plan could not be
// resolved and the caller must run the linear loop instead. The sharder
// and budget are shared with nested row shards, so waves × shards never
// exceed the artifact's Workers.
func (fp *FittedPipeline) transformDAG(sh *sharder, budget *workerBudget, t *data.Table) (bool, error) {
	nodes, ok := resolveSteps(fp.Steps, t)
	if !ok {
		return false, nil
	}
	n := len(nodes)
	colOf := make(map[string]*data.Column, len(t.Cols))
	for _, c := range t.Cols {
		colOf[c.Name] = c
	}
	indeg := make([]int, n)
	children := make([][]int, n)
	for j, nd := range nodes {
		for _, d := range nd.deps {
			indeg[j]++
			children[d] = append(children[d], j)
		}
	}
	outcomes := make([]stepOutcome, n)
	done := make([]bool, n)
	dead := make([]bool, n) // a dependency failed; the step never runs
	var markDead func(j int)
	markDead = func(j int) {
		for _, ch := range children[j] {
			if !dead[ch] {
				dead[ch] = true
				markDead(ch)
			}
		}
	}
	for {
		var ready []int
		for j := 0; j < n; j++ {
			if !done[j] && indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
		if len(ready) == 0 {
			break
		}
		// colOf is read concurrently below and only written between
		// waves; wave width borrows from the shared budget.
		extra := budget.tryAcquire(len(ready) - 1)
		outs, _ := pool.Map(1+extra, len(ready), func(k int) (stepOutcome, error) {
			j := ready[k]
			if dead[j] {
				return stepOutcome{}, nil
			}
			return runFittedStep(sh, nodes[j], t.Name, colOf), nil
		})
		budget.release(extra)
		for k, j := range ready {
			done[j] = true
			for _, ch := range children[j] {
				indeg[ch]--
			}
			if dead[j] {
				continue
			}
			outcomes[j] = outs[k]
			if outs[k].err != nil {
				markDead(j)
				continue
			}
			for _, name := range outs[k].removes {
				delete(colOf, name)
			}
			for _, c := range outs[k].adds {
				colOf[c.Name] = c
			}
		}
	}
	return true, fp.mergeSteps(nodes, outcomes, t)
}

// runFittedStep applies one step against a private table view sharing
// column objects with the batch; edges guarantee exclusive access to
// whatever it writes. Structural changes stay private and are reported
// for the ordered merge.
func runFittedStep(sh *sharder, nd *fittedNode, tableName string, colOf map[string]*data.Column) stepOutcome {
	start := obs.Now()
	var out stepOutcome
	var cols []*data.Column
	seen := map[string]bool{}
	for _, name := range nd.refs.names() {
		if seen[name] {
			continue
		}
		seen[name] = true
		if c := colOf[name]; c != nil {
			cols = append(cols, c)
		}
	}
	ptab := &data.Table{Name: tableName, Cols: cols}
	// Snapshot names, not the slice: DropColumn splices in place.
	beforeNames := make([]string, len(cols))
	before := make(map[string]bool, len(cols))
	for i, c := range cols {
		beforeNames[i] = c.Name
		before[c.Name] = true
	}
	out.err = nd.step.apply(sh, ptab)
	if out.err == nil {
		after := map[string]bool{}
		for _, c := range ptab.Cols {
			after[c.Name] = true
			if !before[c.Name] {
				out.adds = append(out.adds, c)
			}
		}
		for _, name := range beforeNames {
			if !after[name] {
				out.removes = append(out.removes, name)
			}
		}
	}
	out.seconds = obs.Since(start).Seconds()
	return out
}

// mergeSteps replays outcomes in step order: the first error (lowest
// step index) surfaces exactly as the linear loop would raise it, and
// column removals/additions rebuild the table in linear order. Stage
// metrics are booked here so observation order is deterministic.
func (fp *FittedPipeline) mergeSteps(nodes []*fittedNode, outcomes []stepOutcome, t *data.Table) error {
	names := make([]string, 0, len(t.Cols))
	colOf := make(map[string]*data.Column, len(t.Cols))
	for _, c := range t.Cols {
		names = append(names, c.Name)
		colOf[c.Name] = c
	}
	for j, nd := range nodes {
		o := outcomes[j]
		if o.err != nil {
			// A dead node's failed ancestor has a smaller step index, so
			// its error returned on an earlier iteration; reaching an
			// error here means it is the first in step order.
			return artErr(ErrStepFailed, "step %d (%s on %q): %v", nd.idx, nd.step.Op, nd.step.Col, o.err)
		}
		for _, rm := range o.removes {
			delete(colOf, rm)
			for i, name := range names {
				if name == rm {
					names = append(names[:i], names[i+1:]...)
					break
				}
			}
		}
		for _, c := range o.adds {
			names = append(names, c.Name)
			colOf[c.Name] = c
		}
		fp.Metrics.Histogram("catdb_transform_stage_seconds", transformBuckets,
			"op", nd.step.Op).Observe(o.seconds)
	}
	cols := make([]*data.Column, len(names))
	for i, name := range names {
		cols[i] = colOf[name]
	}
	t.Cols = cols
	return nil
}
