// Package pool provides the bounded worker pool underneath every
// concurrent code path in the repo: the bench harness fans experiment
// cells out over it, and the public ParallelPipGen batch API reuses it.
// The contract that makes concurrency safe to adopt everywhere is
// determinism: results come back in index order, and the error returned
// is the one a serial loop over the same cells would have hit first, so a
// caller cannot observe scheduling order through the API.
package pool

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// DefaultWorkers is the default pool size: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(0..n-1) on at most workers goroutines (workers <= 0 means
// DefaultWorkers) and returns the results in index order.
//
// Error semantics match a serial loop: when calls fail, Map returns the
// error of the lowest-indexed failing call and nil results. Indices are
// dispatched in increasing order and a failure stops new dispatches, so
// every index below the returned one has completed — the reported error
// is exactly the one the serial harness would have surfaced.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		mu       sync.Mutex
		next     int
		errIdx   = -1
		firstErr error
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n || errIdx >= 0 {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Each is Map for cell functions with no result value.
func Each(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// DeriveSeed mixes a base seed with string parts (dataset, model, ...)
// and an iteration index into a new seed. Runs that derive their RNGs and
// LLM clients from (seed, dataset, model, iteration) this way are
// independent of worker scheduling: the cell's identity, not its
// execution order, determines its randomness.
func DeriveSeed(base int64, iteration int, parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return base*1_000_003 + int64(iteration)*9_176_867 + int64(h.Sum64()&0x7fffffff)
}
