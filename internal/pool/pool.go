// Package pool provides the bounded worker pool underneath every
// concurrent code path in the repo: the bench harness fans experiment
// cells out over it, and the public ParallelPipGen batch API reuses it.
// The contract that makes concurrency safe to adopt everywhere is
// determinism: results come back in index order, and the error returned
// is the one a serial loop over the same cells would have hit first, so a
// caller cannot observe scheduling order through the API.
package pool

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"catdb/internal/obs"
)

// DefaultWorkers is the default pool size: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// poolMetrics is the process-wide observability registry for the pool.
// Map and Each record batch/task counts, live queue depth and
// active-worker gauges, the peak worker count, and cumulative worker busy
// time into it. Recording never affects scheduling, result order, or the
// error semantics — with no registry installed the only cost per batch is
// one atomic load.
var poolMetrics atomic.Pointer[obs.Registry]

// SetMetrics installs (or, with nil, removes) the registry Map/Each
// record into. The pool is shared process-wide infrastructure, so its
// metrics sink is too.
func SetMetrics(r *obs.Registry) { poolMetrics.Store(r) }

// Map runs fn(0..n-1) on at most workers goroutines (workers <= 0 means
// DefaultWorkers) and returns the results in index order.
//
// Error semantics match a serial loop: when calls fail, Map returns the
// error of the lowest-indexed failing call and nil results. Indices are
// dispatched in increasing order and a failure stops new dispatches, so
// every index below the returned one has completed — the reported error
// is exactly the one the serial harness would have surfaced.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if reg := poolMetrics.Load(); reg != nil {
		reg.Counter("catdb_pool_batches_total").Inc()
		reg.Counter("catdb_pool_tasks_total").Add(int64(n))
		reg.Gauge("catdb_pool_workers_peak").Max(int64(workers))
		reg.Gauge("catdb_pool_queue_depth").Add(int64(n))
		fn = observedTask(reg, fn)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				drainQueueGauge(n - i - 1)
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		mu       sync.Mutex
		next     int
		errIdx   = -1
		firstErr error
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n || errIdx >= 0 {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	drainQueueGauge(n - next) // tasks never dispatched after an abort
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// drainQueueGauge removes tasks that will never run (batch aborted on an
// error) from the live queue-depth gauge so it converges back to the
// depth of the batches still in flight.
func drainQueueGauge(undispatched int) {
	if undispatched <= 0 {
		return
	}
	if reg := poolMetrics.Load(); reg != nil {
		reg.Gauge("catdb_pool_queue_depth").Add(-int64(undispatched))
	}
}

// observedTask wraps a task function with per-task metric recording:
// active-worker and queue-depth gauges move around the call, and the
// task's wall time accumulates into the busy-time counter (worker
// utilization = busy_ns / (workers x wall time)).
func observedTask[T any](reg *obs.Registry, fn func(i int) (T, error)) func(i int) (T, error) {
	active := reg.Gauge("catdb_pool_active_workers")
	queue := reg.Gauge("catdb_pool_queue_depth")
	busy := reg.Counter("catdb_pool_worker_busy_ns_total")
	return func(i int) (T, error) {
		active.Add(1)
		start := obs.Now()
		v, err := fn(i)
		busy.Add(int64(obs.Since(start)))
		active.Add(-1)
		queue.Add(-1)
		return v, err
	}
}

// Each is Map for cell functions with no result value.
func Each(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// DeriveSeed mixes a base seed with string parts (dataset, model, ...)
// and an iteration index into a new seed. Runs that derive their RNGs and
// LLM clients from (seed, dataset, model, iteration) this way are
// independent of worker scheduling: the cell's identity, not its
// execution order, determines its randomness.
func DeriveSeed(base int64, iteration int, parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return base*1_000_003 + int64(iteration)*9_176_867 + int64(h.Sum64()&0x7fffffff)
}
