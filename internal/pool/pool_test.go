package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		out, err := Map(workers, 33, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 33 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map[int](4, 0, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Several cells fail; the reported error must be the one a serial
	// loop would have hit first, regardless of scheduling.
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(workers, 100, func(i int) (int, error) {
			if i == 7 || i == 40 || i == 99 {
				return 0, fmt.Errorf("cell %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 7" {
			t.Fatalf("workers=%d: err = %v, want cell 7", workers, err)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int64
	var mu sync.Mutex
	_, err := Map(workers, 50, func(i int) (int, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		defer atomic.AddInt64(&inFlight, -1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("peak concurrency %d > %d workers", peak, workers)
	}
}

func TestEach(t *testing.T) {
	var n int64
	if err := Each(4, 20, func(i int) error { atomic.AddInt64(&n, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("ran %d cells", n)
	}
	wantErr := errors.New("boom")
	if err := Each(4, 5, func(i int) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeriveSeedStability(t *testing.T) {
	a := DeriveSeed(1, 0, "Diabetes", "gpt-4o")
	b := DeriveSeed(1, 0, "Diabetes", "gpt-4o")
	if a != b {
		t.Fatal("DeriveSeed not stable")
	}
	if DeriveSeed(1, 1, "Diabetes", "gpt-4o") == a {
		t.Fatal("iteration must change the seed")
	}
	if DeriveSeed(1, 0, "CMC", "gpt-4o") == a {
		t.Fatal("dataset must change the seed")
	}
	// Concatenation ambiguity: ("ab","c") and ("a","bc") must differ.
	if DeriveSeed(1, 0, "ab", "c") == DeriveSeed(1, 0, "a", "bc") {
		t.Fatal("part boundaries must be significant")
	}
}
