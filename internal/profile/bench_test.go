package profile

import (
	"fmt"
	"testing"

	"catdb/internal/data"
)

// benchTable loads and consolidates a registered dataset once per scale so
// benchmark iterations measure profiling only, not generation.
func benchTable(b *testing.B, name string, scale float64) (*data.Table, *data.Dataset) {
	b.Helper()
	ds, err := data.Load(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	t, err := ds.Consolidate()
	if err != nil {
		b.Fatal(err)
	}
	return t, ds
}

// benchProfile measures a cold profiling pass: the table is re-cloned with
// the timer stopped each iteration, so memoized column summaries never
// carry over between iterations and the numbers stay comparable to the
// pre-memoization baseline in BENCH_profile.json.
func benchProfile(b *testing.B, name string, scale float64, opts Options) {
	t0, ds := benchTable(b, name, scale)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := t0.Clone()
		b.StartTimer()
		if _, err := Table(t, ds.Target, ds.Task, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileKDD98 profiles the largest registered dataset (478
// columns, heavy missingness) — the profiler's worst case, dominated by
// the pairwise similarity/inclusion/association loops. Default workers
// (GOMAXPROCS).
func BenchmarkProfileKDD98(b *testing.B) {
	benchProfile(b, "KDD98", 0.2, Options{Seed: 7})
}

// BenchmarkProfileKDD98Serial pins Workers=1: the single-threaded win from
// memoized summaries and inclusion pruning alone.
func BenchmarkProfileKDD98Serial(b *testing.B) {
	benchProfile(b, "KDD98", 0.2, Options{Seed: 7, Workers: 1})
}

// BenchmarkProfileKDD98Warm re-profiles the same table instance: column
// summaries stay memoized across iterations, isolating the non-summary
// cost (sampling, embeddings, pairwise loops).
func BenchmarkProfileKDD98Warm(b *testing.B) {
	t, ds := benchTable(b, "KDD98", 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table(t, ds.Target, ds.Task, Options{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileKDD98CacheHit measures the cross-cell cache path after
// the first computation: one content hash of the table plus a map lookup.
func BenchmarkProfileKDD98CacheHit(b *testing.B) {
	t, ds := benchTable(b, "KDD98", 0.2)
	c := NewCache()
	if _, err := c.Table(t, ds.Target, ds.Task, Options{Seed: 7}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Table(t, ds.Target, ds.Task, Options{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileSuite profiles a spread of registry shapes (wide sparse,
// wide dense numeric, mixed multi-table) at a smaller scale.
func BenchmarkProfileSuite(b *testing.B) {
	for _, name := range []string{"Volkert", "Yelp", "Financial"} {
		name := name
		b.Run(fmt.Sprintf("dataset=%s", name), func(b *testing.B) {
			benchProfile(b, name, 0.1, Options{Seed: 7})
		})
	}
}
