package profile

import (
	"fmt"
	"math"
	"sync"

	"catdb/internal/data"
	"catdb/internal/obs"
)

// Cache memoizes profiles by table *content* and profiling inputs, so
// benchmark cells that profile the same (dataset, scale, seed, options)
// combination share one computation instead of redoing Algorithm 1 per
// cell. Content keying makes it sound regardless of which cell computes
// first: profiling is a pure function of the table content and options
// (CramersV walks its contingency grid in sorted order precisely so this
// holds bit-for-bit), and a mutated copy of a dataset hashes to a
// different key. Returned profiles are shared across callers and must be
// treated as read-only.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    int
	misses  int
	metrics *obs.Registry
}

// cacheKey identifies one profiling computation. Workers is normalized
// out of the options: the profiler guarantees bit-identical output at any
// worker count, so concurrency must not fragment the cache.
type cacheKey struct {
	content uint64
	rows    int
	cols    int
	dataset string
	target  string
	task    data.Task
	opts    Options
}

type cacheEntry struct {
	once sync.Once
	prof *Profile
	err  error
}

// NewCache returns an empty profile cache safe for concurrent use.
func NewCache() *Cache {
	return &Cache{entries: map[cacheKey]*cacheEntry{}}
}

// SetMetrics attaches an observability registry: lookups are recorded as
// catdb_profile_cache_{hits,misses}_total. Nil detaches.
func (c *Cache) SetMetrics(r *obs.Registry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.metrics = r
	c.mu.Unlock()
}

// Table returns the memoized profile of t, computing it at most once per
// distinct (content, target, task, options) key even under concurrent
// callers: racing lookups share a single in-flight computation.
func (c *Cache) Table(t *data.Table, target string, task data.Task, opts Options) (*Profile, error) {
	if c == nil {
		return Table(t, target, task, opts)
	}
	norm := opts.withDefaults()
	norm.Workers = 0
	key := cacheKey{
		content: tableHash(t),
		rows:    t.NumRows(),
		cols:    len(t.Cols),
		dataset: t.Name,
		target:  target,
		task:    task,
		opts:    norm,
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	m := c.metrics
	c.mu.Unlock()
	if ok {
		m.Counter("catdb_profile_cache_hits_total").Inc()
	} else {
		m.Counter("catdb_profile_cache_misses_total").Inc()
	}
	e.once.Do(func() {
		e.prof, e.err = Table(t, target, task, opts)
	})
	return e.prof, e.err
}

// Dataset is the cached counterpart of profile.Dataset: it consolidates
// the dataset and profiles the result through the cache.
func (c *Cache) Dataset(ds *data.Dataset, opts Options) (*Profile, error) {
	if c == nil {
		return Dataset(ds, opts)
	}
	t, err := ds.Consolidate()
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	p, err := c.Table(t, ds.Target, ds.Task, opts)
	if err != nil {
		return nil, err
	}
	if p.Dataset != ds.Name {
		// Shared profiles are read-only; rename on a shallow copy.
		cp := *p
		cp.Dataset = ds.Name
		return &cp, nil
	}
	return p, nil
}

// Stats reports cache hits and misses so benchmarks can verify sharing.
func (c *Cache) Stats() (hits, misses int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// tableHash is FNV-1a over the full table content: per column its name,
// kind, and every cell (value bits plus missing flag). One O(cells) pass —
// negligible next to the profiling it deduplicates.
func tableHash(t *data.Table) uint64 {
	h := newFNV()
	h.str(t.Name)
	for _, c := range t.Cols {
		h.str(c.Name)
		h.u64(uint64(c.Kind))
		n := c.Len()
		h.u64(uint64(n))
		for i := 0; i < n; i++ {
			if c.IsMissing(i) {
				h.u64(1)
				continue
			}
			h.u64(0)
			if c.Kind == data.KindString {
				h.str(c.Str(i))
			} else {
				h.u64(math.Float64bits(c.Num(i)))
			}
		}
	}
	return uint64(*h)
}

type fnv uint64

func newFNV() *fnv {
	h := fnv(1469598103934665603)
	return &h
}

func (h *fnv) u64(x uint64) {
	v := uint64(*h)
	for i := 0; i < 8; i++ {
		v = (v ^ (x & 0xff)) * 1099511628211
		x >>= 8
	}
	*h = fnv(v)
}

func (h *fnv) str(s string) {
	v := uint64(*h)
	for i := 0; i < len(s); i++ {
		v = (v ^ uint64(s[i])) * 1099511628211
	}
	// Length terminator so ("ab","c") and ("a","bc") hash differently.
	*h = fnv(v)
	h.u64(uint64(len(s)))
}
