package profile

import (
	"math/rand"
	"reflect"
	"testing"

	"catdb/internal/data"
)

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// normalized strips the wall-clock field so profiles can be compared
// structurally: Elapsed is the only field that legitimately varies between
// bit-identical computations.
func normalized(p *Profile) Profile {
	cp := *p
	cp.Elapsed = 0
	return cp
}

func financialTable(t *testing.T) *data.Table {
	t.Helper()
	ds, err := data.Load("Financial", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// The profiler must be bit-identical at any worker count: every column
// derives its RNG from (seed, index, name) and all shared state is warmed
// read-only before the fan-out.
func TestParallelMatchesSerial(t *testing.T) {
	for _, tab := range []*data.Table{salaryLikeTable(), financialTable(t)} {
		serial, err := Table(tab, tab.Cols[len(tab.Cols)-1].Name, data.Regression, Options{Seed: 42, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := Table(tab, tab.Cols[len(tab.Cols)-1].Name, data.Regression, Options{Seed: 42, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalized(serial), normalized(par)) {
				t.Fatalf("%s: profile at workers=%d differs from serial", tab.Name, workers)
			}
		}
	}
}

func TestCacheBitIdenticalAndShared(t *testing.T) {
	tab := financialTable(t)
	target := tab.Cols[len(tab.Cols)-1].Name
	opts := Options{Seed: 7}

	direct, err := Table(tab, target, data.Regression, opts)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	p1, err := c.Table(tab, target, data.Regression, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Table(tab, target, data.Regression, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cache hit must return the shared profile pointer")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if !reflect.DeepEqual(normalized(direct), normalized(p1)) {
		t.Fatal("cached profile differs from direct computation")
	}

	// A second load of the same dataset produces a content-identical table
	// — a different *Table instance must still hit.
	tab2 := financialTable(t)
	p3, err := c.Table(tab2, target, data.Regression, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("content-identical table from a second load must hit the cache")
	}

	// Workers must not fragment the cache: the output is worker-invariant.
	p4, err := c.Table(tab, target, data.Regression, Options{Seed: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p4 != p1 {
		t.Fatal("worker count must be normalized out of the cache key")
	}
}

func TestCacheKeysOnContentAndOptions(t *testing.T) {
	tab := financialTable(t)
	target := tab.Cols[len(tab.Cols)-1].Name
	c := NewCache()
	p1, err := c.Table(tab, target, data.Regression, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	// A mutated copy must miss: corruption experiments profile altered
	// tables and must never alias the clean profile.
	mut := tab.Clone()
	for _, col := range mut.Cols {
		if col.Kind.IsNumeric() {
			col.SetNum(0, col.Num(0)+1000)
			break
		}
	}
	p2, err := c.Table(mut, target, data.Regression, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatal("mutated table content must not hit the clean entry")
	}

	// Different seed must miss too: samples are seed-dependent.
	p3, err := c.Table(tab, target, data.Regression, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("different seed must not share an entry")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 3 {
		t.Fatalf("stats = %d hits / %d misses, want 0/3", hits, misses)
	}
}

func TestSampleValuesReservoir(t *testing.T) {
	n := 5000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	c := data.NewNumeric("x", vals)
	c.SetMissing(0)
	rng := newTestRNG(99)
	got := sampleValues(c, 10, rng)
	if len(got) != 10 {
		t.Fatalf("sample size = %d, want 10", len(got))
	}
	seen := map[string]bool{}
	for _, v := range got {
		if v == "" {
			t.Fatal("missing cell sampled")
		}
		if seen[v] {
			t.Fatalf("duplicate sample %q (reservoir must be without replacement)", v)
		}
		seen[v] = true
	}
	// Fewer present values than budget: return them all.
	small := data.NewNumeric("y", []float64{1, 2, 3})
	small.SetMissing(1)
	if got := sampleValues(small, 10, newTestRNG(1)); len(got) != 2 {
		t.Fatalf("under-budget sample = %v, want both present values", got)
	}
	if got := sampleValues(small, 0, newTestRNG(1)); got != nil {
		t.Fatalf("zero budget must sample nothing, got %v", got)
	}
}
