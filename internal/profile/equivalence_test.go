package profile

import (
	"reflect"
	"testing"

	"catdb/internal/data"
)

// materialize rebuilds a table into fresh dense storage through the
// public accessors, severing any storage sharing with views.
func materialize(t *data.Table) *data.Table {
	out := data.NewTable(t.Name)
	for _, c := range t.Cols {
		var nc *data.Column
		if c.Kind == data.KindString {
			nc = data.NewString(c.Name, append([]string(nil), c.StrsView()...))
		} else {
			nc = data.NewNumeric(c.Name, append([]float64(nil), c.NumsView()...))
		}
		nc.Kind = c.Kind
		for i := 0; i < c.Len(); i++ {
			if c.IsMissing(i) {
				nc.SetMissing(i)
			}
		}
		out.MustAddColumn(nc)
	}
	return out
}

// Profiling a zero-copy row view must be bit-identical to profiling the
// same rows materialized into dense storage (the pre-view deep-copy
// semantics): views are an optimization, never an observable change.
func TestProfileViewMatchesMaterialized(t *testing.T) {
	tab := financialTable(t)
	target := "loan_status"

	rows := make([]int, 0, tab.NumRows()/2)
	for i := 0; i < tab.NumRows(); i += 2 {
		rows = append(rows, i)
	}
	view := tab.SelectRows(rows)
	dense := materialize(view)

	pView, err := Table(view, target, data.Binary, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pDense, err := Table(dense, target, data.Binary, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalized(pView), normalized(pDense)) {
		t.Fatal("profile of row view differs from materialized copy")
	}

	// Split views must profile identically to their materialized twins too.
	trV, teV := tab.Split(0.7, 21)
	for name, pair := range map[string][2]*data.Table{
		"train": {trV, materialize(trV)},
		"test":  {teV, materialize(teV)},
	} {
		a, err := Table(pair[0], target, data.Binary, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Table(pair[1], target, data.Binary, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalized(a), normalized(b)) {
			t.Fatalf("%s split: view profile differs from materialized copy", name)
		}
	}
}
