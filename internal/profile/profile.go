// Package profile implements Algorithm 1 (PROFILING) of the paper: for
// every column of a dataset it extracts the schema (name, data type), the
// distinct-value and missing-value percentages, basic statistics, value
// samples, and — via the cheap column embeddings of internal/embed —
// approximate inclusion dependencies, similarities, and correlations.
package profile

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"catdb/internal/data"
	"catdb/internal/embed"
	"catdb/internal/pool"
)

// FeatureType is the ML-level feature type layered over the physical kind.
// Profiling assigns a basic guess; internal/catalog refines it with the
// (simulated) LLM per §3.2.
type FeatureType int

// Feature types recognised by the catalog.
const (
	FeatureUnknown FeatureType = iota
	FeatureNumerical
	FeatureCategorical
	FeatureBoolean
	FeatureSentence // free text requiring refinement
	FeatureList     // multi-valued cells ("Python, Java")
	FeatureConstant
	FeatureID
)

// String returns the lower-case feature type name as used in prompts.
func (f FeatureType) String() string {
	switch f {
	case FeatureNumerical:
		return "numerical"
	case FeatureCategorical:
		return "categorical"
	case FeatureBoolean:
		return "boolean"
	case FeatureSentence:
		return "sentence"
	case FeatureList:
		return "list"
	case FeatureConstant:
		return "constant"
	case FeatureID:
		return "id"
	default:
		return "unknown"
	}
}

// ColumnProfile is the per-column entry of the data profile (the
// dictionary P[c] of Algorithm 1).
type ColumnProfile struct {
	Name            string
	DataType        data.Kind
	FeatureType     FeatureType
	DistinctPct     float64 // percentage in [0,100]
	MissingPct      float64 // percentage in [0,100]
	DistinctCount   int
	Stats           data.Stats
	Samples         []string
	DistinctValues  []string // all values for categorical candidates
	InclusionDeps   []string // columns whose value set this column is included in
	SimilarTo       []string // most similar sibling columns (embedding cosine)
	TargetCorr      float64  // association with the target column
	IsTarget        bool
	NonNullFraction float64
}

// Profile is the full data profile of a (consolidated) table.
type Profile struct {
	Dataset string
	Rows    int
	Target  string
	Task    data.Task
	Columns []*ColumnProfile
	Elapsed time.Duration // wall time of profiling (Figure 9a)

	// index maps column name → Columns position. Table builds it eagerly
	// (never lazily: cached profiles are read by concurrent bench cells,
	// and a lazy fill would race), so Column is O(1) in the prompt
	// construction and catalog refinement loops.
	index map[string]int
}

// Column returns the profile entry for a column name, or nil. Profiles
// built by Table answer from the eager name index; hand-assembled profiles
// (tests) fall back to a linear scan.
func (p *Profile) Column(name string) *ColumnProfile {
	if p.index != nil {
		if i, ok := p.index[name]; ok && i < len(p.Columns) {
			return p.Columns[i]
		}
		return nil
	}
	for _, c := range p.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// buildIndex (re)builds the name→position index; call after Columns is
// fully assembled and before the profile is shared.
func (p *Profile) buildIndex() {
	idx := make(map[string]int, len(p.Columns))
	for i, c := range p.Columns {
		idx[c.Name] = i
	}
	p.index = idx
}

// Options tunes profiling.
type Options struct {
	// Samples is τ₁ of Algorithm 1: values stored per non-categorical
	// column. Default 10 (the paper's LLM-type-inference sample size).
	Samples int
	// MaxRowsForPairwise caps the rows used for embedding/pairwise
	// analysis. Default 2000.
	MaxRowsForPairwise int
	// CategoricalMaxDistinct is the distinct-count threshold under which a
	// string column is treated as a categorical candidate. Default 64.
	CategoricalMaxDistinct int
	// Seed drives sample selection. Every column derives its own RNG from
	// (Seed, column index, column name), so the profile is bit-identical
	// at any worker count.
	Seed int64
	// Workers bounds the per-column fan-out (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// SummaryBackend selects how column statistics are computed
	// (exact | sketch | auto, data.ParseSummaryBackend). The sketch
	// backend answers quantiles from a mergeable fixed-size sketch and
	// never materializes per-column sorted copies — the paper-scale
	// profiling path. Zero value defers to the process default (exact).
	SummaryBackend data.SummaryBackend
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 10
	}
	if o.MaxRowsForPairwise <= 0 {
		o.MaxRowsForPairwise = 2000
	}
	if o.CategoricalMaxDistinct <= 0 {
		o.CategoricalMaxDistinct = 64
	}
	return o
}

// Table profiles a single table (Algorithm 1) against the given target
// column and task. The per-column work fans out over a bounded worker
// pool (Options.Workers); every column derives its sampling RNG from the
// profiling seed and its own identity, and all shared state (summaries,
// embeddings) is warmed read-only before the fan-out, so the result is
// bit-identical to the serial loop at any worker count.
func Table(t *data.Table, target string, task data.Task, opts Options) (*Profile, error) {
	opts = opts.withDefaults()
	start := time.Now()
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("profile: table %q is empty", t.Name)
	}
	p := &Profile{Dataset: t.Name, Rows: t.NumRows(), Target: target, Task: task}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Embedding working set: sample rows once for all pairwise analysis.
	work := t
	if t.NumRows() > opts.MaxRowsForPairwise {
		work = t.Sample(opts.MaxRowsForPairwise, rng)
	}

	// Warm pass: compute each column's memoized summary (full table and
	// working sample) and its embedding once, in parallel. The profiling
	// pass below only reads these — concurrent workers never write shared
	// column state.
	m := len(t.Cols)
	vecs := make([]embed.Vector, m)
	sums := make([]*data.Summary, m)
	workSums := make([]*data.Summary, m)
	if err := pool.Each(opts.Workers, m, func(i int) error {
		sums[i] = t.Cols[i].SummaryWith(opts.SummaryBackend)
		workSums[i] = work.Cols[i].SummaryWith(opts.SummaryBackend)
		vecs[i] = embed.Column(work.Cols[i])
		return nil
	}); err != nil {
		return nil, err
	}
	targetCol := work.Col(target)

	cols, err := pool.Map(opts.Workers, m, func(ci int) (*ColumnProfile, error) {
		c := t.Cols[ci]
		sum := sums[ci]
		// All ratio/count fields come from the warmed backend summary, not
		// the Column convenience methods: those recompute a default-backend
		// (exact) summary, which would defeat the sketch path's point of
		// never building sorted copies. Same float expressions, so the
		// exact backend stays bit-identical.
		cp := &ColumnProfile{
			Name:            c.Name,
			DataType:        c.Kind,
			DistinctPct:     distinctRatio(sum) * 100,
			MissingPct:      missingRatio(sum) * 100,
			DistinctCount:   sum.DistinctCount(),
			NonNullFraction: 1 - missingRatio(sum),
			IsTarget:        c.Name == target,
		}
		cp.FeatureType = guessFeatureType(c, sum, opts)
		if c.Kind.IsNumeric() {
			cp.Stats = sum.Stats
		}
		colRng := rand.New(rand.NewSource(pool.DeriveSeed(opts.Seed, ci, c.Name)))
		cp.Samples = sampleValues(c, opts.Samples, colRng)
		if cp.FeatureType == FeatureCategorical || cp.FeatureType == FeatureBoolean {
			cp.DistinctValues = sum.Distinct
		}
		// Pairwise metadata from the working sample (Alg. 1 lines 7-9).
		wc := work.Cols[ci]
		wcSum := workSums[ci]
		for cj, other := range work.Cols {
			if cj == ci || other.Name == target {
				continue
			}
			if embed.Cosine(vecs[ci], vecs[cj]) > 0.85 {
				cp.SimilarTo = append(cp.SimilarTo, other.Name)
			}
		}
		if cp.FeatureType == FeatureCategorical {
			for cj, other := range work.Cols {
				if cj == ci || !isDiscrete(workSums[cj], opts) {
					continue
				}
				// Cheap distinct-count pruning first: containment of wc in
				// a column with no more distinct values than wc can never
				// satisfy the joint condition, so the O(d) set walk is
				// skipped for most pairs. Same boolean outcome as before.
				oSum := workSums[cj]
				if oSum.DistinctCount() <= wcSum.DistinctCount() {
					continue
				}
				if embed.InclusionFromSummaries(wcSum, oSum) >= 0.999 {
					cp.InclusionDeps = append(cp.InclusionDeps, other.Name)
				}
			}
		}
		if targetCol != nil && c.Name != target {
			if wc.Kind.IsNumeric() && targetCol.Kind.IsNumeric() {
				cp.TargetCorr = embed.Correlation(wc, targetCol)
			} else {
				cp.TargetCorr = embed.CramersV(wc, targetCol)
			}
		}
		sort.Strings(cp.SimilarTo)
		sort.Strings(cp.InclusionDeps)
		return cp, nil
	})
	if err != nil {
		return nil, err
	}
	p.Columns = cols
	p.buildIndex()
	p.Elapsed = time.Since(start)
	return p, nil
}

// Dataset consolidates a (possibly multi-table) dataset and profiles the
// result; this is the entry point CatDB uses.
func Dataset(ds *data.Dataset, opts Options) (*Profile, error) {
	t, err := ds.Consolidate()
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	p, err := Table(t, ds.Target, ds.Task, opts)
	if err != nil {
		return nil, err
	}
	p.Dataset = ds.Name
	return p, nil
}

// distinctRatio and missingRatio mirror Column.DistinctRatio and
// Column.MissingRatio over an already-computed summary (same expressions,
// so results are bit-identical under the exact backend) without forcing a
// default-backend summary build.
func distinctRatio(s *data.Summary) float64 {
	n := s.Present()
	if n == 0 {
		return 0
	}
	return float64(s.DistinctCount()) / float64(n)
}

func missingRatio(s *data.Summary) float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.Rows-s.Present()) / float64(s.Rows)
}

func isDiscrete(s *data.Summary, opts Options) bool {
	return s.DistinctCount() <= opts.CategoricalMaxDistinct*4
}

// guessFeatureType is the profiler's pre-LLM heuristic (the catalog's LLM
// pass can overturn it, e.g. sentence → categorical). It reads all counts
// from the provided backend summary.
func guessFeatureType(c *data.Column, sum *data.Summary, opts Options) FeatureType {
	if sum.DistinctCount() == 1 && sum.Present() > 0 {
		return FeatureConstant
	}
	switch c.Kind {
	case data.KindBool:
		return FeatureBoolean
	case data.KindInt:
		if distinctRatio(sum) > 0.98 && sum.DistinctCount() > 50 {
			return FeatureID
		}
		if sum.DistinctCount() <= 12 {
			return FeatureCategorical
		}
		return FeatureNumerical
	case data.KindFloat:
		return FeatureNumerical
	}
	// String columns.
	dc := sum.DistinctCount()
	if dc <= opts.CategoricalMaxDistinct {
		return FeatureCategorical
	}
	multiWord, commaSep, n := 0, 0, 0
	for i := 0; i < c.Len() && n < 200; i++ {
		if c.IsMissing(i) {
			continue
		}
		n++
		v := c.Str(i)
		if strings.Contains(v, ", ") {
			commaSep++
		}
		if strings.Count(strings.TrimSpace(v), " ") >= 1 {
			multiWord++
		}
	}
	if n == 0 {
		return FeatureUnknown
	}
	if float64(commaSep)/float64(n) > 0.3 {
		return FeatureList
	}
	if float64(multiWord)/float64(n) > 0.3 {
		return FeatureSentence
	}
	if distinctRatio(sum) > 0.98 {
		return FeatureID
	}
	return FeatureSentence
}

// sampleValues draws up to n present values uniformly without replacement
// with a bounded reservoir (algorithm R), then shuffles the reservoir so
// the sample order stays random. Memory is O(n) — the sample budget — not
// O(rows): the old implementation materialized and shuffled a full
// row-index slice per column.
func sampleValues(c *data.Column, n int, rng *rand.Rand) []string {
	if n <= 0 {
		return nil
	}
	reservoir := make([]int, 0, n)
	seen := 0
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			continue
		}
		seen++
		if len(reservoir) < n {
			reservoir = append(reservoir, i)
			continue
		}
		if j := rng.Intn(seen); j < n {
			reservoir[j] = i
		}
	}
	if len(reservoir) == 0 {
		return nil
	}
	rng.Shuffle(len(reservoir), func(i, j int) { reservoir[i], reservoir[j] = reservoir[j], reservoir[i] })
	out := make([]string, len(reservoir))
	for i, r := range reservoir {
		out[i] = c.ValueString(r)
	}
	return out
}

// TypeCensus counts feature types across a set of profiles (Figure 9b).
func TypeCensus(profiles []*Profile) map[FeatureType]int {
	out := map[FeatureType]int{}
	for _, p := range profiles {
		for _, c := range p.Columns {
			if c.IsTarget {
				continue
			}
			out[c.FeatureType]++
		}
	}
	return out
}
