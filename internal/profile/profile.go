// Package profile implements Algorithm 1 (PROFILING) of the paper: for
// every column of a dataset it extracts the schema (name, data type), the
// distinct-value and missing-value percentages, basic statistics, value
// samples, and — via the cheap column embeddings of internal/embed —
// approximate inclusion dependencies, similarities, and correlations.
package profile

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"catdb/internal/data"
	"catdb/internal/embed"
)

// FeatureType is the ML-level feature type layered over the physical kind.
// Profiling assigns a basic guess; internal/catalog refines it with the
// (simulated) LLM per §3.2.
type FeatureType int

// Feature types recognised by the catalog.
const (
	FeatureUnknown FeatureType = iota
	FeatureNumerical
	FeatureCategorical
	FeatureBoolean
	FeatureSentence // free text requiring refinement
	FeatureList     // multi-valued cells ("Python, Java")
	FeatureConstant
	FeatureID
)

// String returns the lower-case feature type name as used in prompts.
func (f FeatureType) String() string {
	switch f {
	case FeatureNumerical:
		return "numerical"
	case FeatureCategorical:
		return "categorical"
	case FeatureBoolean:
		return "boolean"
	case FeatureSentence:
		return "sentence"
	case FeatureList:
		return "list"
	case FeatureConstant:
		return "constant"
	case FeatureID:
		return "id"
	default:
		return "unknown"
	}
}

// ColumnProfile is the per-column entry of the data profile (the
// dictionary P[c] of Algorithm 1).
type ColumnProfile struct {
	Name            string
	DataType        data.Kind
	FeatureType     FeatureType
	DistinctPct     float64 // percentage in [0,100]
	MissingPct      float64 // percentage in [0,100]
	DistinctCount   int
	Stats           data.Stats
	Samples         []string
	DistinctValues  []string // all values for categorical candidates
	InclusionDeps   []string // columns whose value set this column is included in
	SimilarTo       []string // most similar sibling columns (embedding cosine)
	TargetCorr      float64  // association with the target column
	IsTarget        bool
	NonNullFraction float64
}

// Profile is the full data profile of a (consolidated) table.
type Profile struct {
	Dataset string
	Rows    int
	Target  string
	Task    data.Task
	Columns []*ColumnProfile
	Elapsed time.Duration // wall time of profiling (Figure 9a)
}

// Column returns the profile entry for a column name, or nil.
func (p *Profile) Column(name string) *ColumnProfile {
	for _, c := range p.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Options tunes profiling.
type Options struct {
	// Samples is τ₁ of Algorithm 1: values stored per non-categorical
	// column. Default 10 (the paper's LLM-type-inference sample size).
	Samples int
	// MaxRowsForPairwise caps the rows used for embedding/pairwise
	// analysis. Default 2000.
	MaxRowsForPairwise int
	// CategoricalMaxDistinct is the distinct-count threshold under which a
	// string column is treated as a categorical candidate. Default 64.
	CategoricalMaxDistinct int
	// Seed drives sample selection.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 10
	}
	if o.MaxRowsForPairwise <= 0 {
		o.MaxRowsForPairwise = 2000
	}
	if o.CategoricalMaxDistinct <= 0 {
		o.CategoricalMaxDistinct = 64
	}
	return o
}

// Table profiles a single table (Algorithm 1) against the given target
// column and task.
func Table(t *data.Table, target string, task data.Task, opts Options) (*Profile, error) {
	opts = opts.withDefaults()
	start := time.Now()
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("profile: table %q is empty", t.Name)
	}
	p := &Profile{Dataset: t.Name, Rows: t.NumRows(), Target: target, Task: task}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Embedding working set: sample rows once for all pairwise analysis.
	work := t
	if t.NumRows() > opts.MaxRowsForPairwise {
		work = t.Sample(opts.MaxRowsForPairwise, rng)
	}
	vecs := make([]embed.Vector, len(work.Cols))
	for i, c := range work.Cols {
		vecs[i] = embed.Column(c)
	}
	targetCol := work.Col(target)

	for ci, c := range t.Cols {
		cp := &ColumnProfile{
			Name:            c.Name,
			DataType:        c.Kind,
			DistinctPct:     c.DistinctRatio() * 100,
			MissingPct:      c.MissingRatio() * 100,
			DistinctCount:   c.DistinctCount(),
			NonNullFraction: 1 - c.MissingRatio(),
			IsTarget:        c.Name == target,
		}
		cp.FeatureType = guessFeatureType(c, opts)
		if c.Kind.IsNumeric() {
			cp.Stats = c.NumericStats()
		}
		cp.Samples = sampleValues(c, opts.Samples, rng)
		if cp.FeatureType == FeatureCategorical || cp.FeatureType == FeatureBoolean {
			cp.DistinctValues = c.Distinct()
		}
		// Pairwise metadata from the working sample (Alg. 1 lines 7-9).
		wc := work.Cols[ci]
		for cj, other := range work.Cols {
			if cj == ci || other.Name == target {
				continue
			}
			if embed.Cosine(vecs[ci], vecs[cj]) > 0.85 {
				cp.SimilarTo = append(cp.SimilarTo, other.Name)
			}
		}
		if cp.FeatureType == FeatureCategorical {
			for cj, other := range work.Cols {
				if cj == ci || !isDiscrete(other, opts) {
					continue
				}
				if embed.InclusionScore(wc, other) >= 0.999 && other.DistinctCount() > wc.DistinctCount() {
					cp.InclusionDeps = append(cp.InclusionDeps, other.Name)
				}
			}
		}
		if targetCol != nil && c.Name != target {
			if wc.Kind.IsNumeric() && targetCol.Kind.IsNumeric() {
				cp.TargetCorr = embed.Correlation(wc, targetCol)
			} else {
				cp.TargetCorr = embed.CramersV(wc, targetCol)
			}
		}
		sort.Strings(cp.SimilarTo)
		sort.Strings(cp.InclusionDeps)
		p.Columns = append(p.Columns, cp)
	}
	p.Elapsed = time.Since(start)
	return p, nil
}

// Dataset consolidates a (possibly multi-table) dataset and profiles the
// result; this is the entry point CatDB uses.
func Dataset(ds *data.Dataset, opts Options) (*Profile, error) {
	t, err := ds.Consolidate()
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	p, err := Table(t, ds.Target, ds.Task, opts)
	if err != nil {
		return nil, err
	}
	p.Dataset = ds.Name
	return p, nil
}

func isDiscrete(c *data.Column, opts Options) bool {
	return c.DistinctCount() <= opts.CategoricalMaxDistinct*4
}

// guessFeatureType is the profiler's pre-LLM heuristic (the catalog's LLM
// pass can overturn it, e.g. sentence → categorical).
func guessFeatureType(c *data.Column, opts Options) FeatureType {
	if c.IsConstant() {
		return FeatureConstant
	}
	switch c.Kind {
	case data.KindBool:
		return FeatureBoolean
	case data.KindInt:
		if c.DistinctRatio() > 0.98 && c.DistinctCount() > 50 {
			return FeatureID
		}
		if c.DistinctCount() <= 12 {
			return FeatureCategorical
		}
		return FeatureNumerical
	case data.KindFloat:
		return FeatureNumerical
	}
	// String columns.
	dc := c.DistinctCount()
	if dc <= opts.CategoricalMaxDistinct {
		return FeatureCategorical
	}
	multiWord, commaSep, n := 0, 0, 0
	for i := 0; i < c.Len() && n < 200; i++ {
		if c.IsMissing(i) {
			continue
		}
		n++
		v := c.Strs[i]
		if strings.Contains(v, ", ") {
			commaSep++
		}
		if strings.Count(strings.TrimSpace(v), " ") >= 1 {
			multiWord++
		}
	}
	if n == 0 {
		return FeatureUnknown
	}
	if float64(commaSep)/float64(n) > 0.3 {
		return FeatureList
	}
	if float64(multiWord)/float64(n) > 0.3 {
		return FeatureSentence
	}
	if c.DistinctRatio() > 0.98 {
		return FeatureID
	}
	return FeatureSentence
}

func sampleValues(c *data.Column, n int, rng *rand.Rand) []string {
	var present []int
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) {
			present = append(present, i)
		}
	}
	if len(present) == 0 {
		return nil
	}
	rng.Shuffle(len(present), func(i, j int) { present[i], present[j] = present[j], present[i] })
	if len(present) > n {
		present = present[:n]
	}
	out := make([]string, len(present))
	for i, r := range present {
		out[i] = c.ValueString(r)
	}
	return out
}

// TypeCensus counts feature types across a set of profiles (Figure 9b).
func TypeCensus(profiles []*Profile) map[FeatureType]int {
	out := map[FeatureType]int{}
	for _, p := range profiles {
		for _, c := range p.Columns {
			if c.IsTarget {
				continue
			}
			out[c.FeatureType]++
		}
	}
	return out
}
