package profile

import (
	"testing"

	"catdb/internal/data"
)

func salaryLikeTable() *data.Table {
	n := 300
	exp := make([]string, n)
	gender := make([]string, n)
	skills := make([]string, n)
	addr := make([]string, n)
	sal := make([]float64, n)
	id := make([]float64, n)
	konst := make([]string, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			exp[i] = "1 year"
			gender[i] = "Female"
			skills[i] = "Java, SQL"
			addr[i] = "7050 CA"
		case 1:
			exp[i] = "two years or so"
			gender[i] = "F"
			skills[i] = "Python"
			addr[i] = "TX 7871"
		default:
			exp[i] = "about 3 years"
			gender[i] = "Male"
			skills[i] = "C++, Java, SQL"
			addr[i] = "CA 9000"
		}
		sal[i] = 100 + float64(i%3)*100
		id[i] = float64(i)
		konst[i] = "k"
	}
	t := data.NewTable("salary")
	t.MustAddColumn(data.NewString("experience", exp))
	t.MustAddColumn(data.NewString("gender", gender))
	t.MustAddColumn(data.NewString("skills", skills))
	t.MustAddColumn(data.NewString("address", addr))
	t.MustAddColumn(data.NewInt("emp_id", id))
	t.MustAddColumn(data.NewString("firmware", konst))
	t.MustAddColumn(data.NewNumeric("salary", sal))
	return t
}

func TestProfileBasics(t *testing.T) {
	tb := salaryLikeTable()
	p, err := Table(tb, "salary", data.Regression, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != 300 || len(p.Columns) != 7 {
		t.Fatalf("profile shape: rows=%d cols=%d", p.Rows, len(p.Columns))
	}
	if p.Column("salary") == nil || !p.Column("salary").IsTarget {
		t.Fatal("target flag not set")
	}
	if p.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

func TestFeatureTypeGuesses(t *testing.T) {
	tb := salaryLikeTable()
	p, _ := Table(tb, "salary", data.Regression, Options{Seed: 1})
	cases := map[string]FeatureType{
		"gender":   FeatureCategorical,
		"skills":   FeatureCategorical, // few distinct joined strings here
		"emp_id":   FeatureID,
		"firmware": FeatureConstant,
	}
	for col, want := range cases {
		if got := p.Column(col).FeatureType; got != want {
			t.Errorf("%s: feature type = %s, want %s", col, got, want)
		}
	}
}

func TestFeatureTypeListAndSentence(t *testing.T) {
	n := 200
	lst := make([]string, n)
	sent := make([]string, n)
	for i := 0; i < n; i++ {
		lst[i] = "item" + string(rune('a'+i%26)) + ", item" + string(rune('a'+(i*7)%26)) + ", x" + string(rune('a'+(i*3)%26))
		sent[i] = "this is note number " + string(rune('a'+i%26)) + string(rune('a'+(i*11)%26)) + string(rune('a'+(i*5)%26))
	}
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewString("tags", lst))
	tb.MustAddColumn(data.NewString("note", sent))
	tb.MustAddColumn(data.NewNumeric("y", make([]float64, n)))
	p, _ := Table(tb, "y", data.Regression, Options{CategoricalMaxDistinct: 10, Seed: 1})
	if got := p.Column("tags").FeatureType; got != FeatureList {
		t.Errorf("tags = %s, want list", got)
	}
	if got := p.Column("note").FeatureType; got != FeatureSentence {
		t.Errorf("note = %s, want sentence", got)
	}
}

func TestDistinctAndMissingPct(t *testing.T) {
	tb := data.NewTable("t")
	c := data.NewString("c", []string{"a", "a", "b", "b"})
	c.SetMissing(3)
	tb.MustAddColumn(c)
	tb.MustAddColumn(data.NewNumeric("y", []float64{1, 2, 3, 4}))
	p, _ := Table(tb, "y", data.Regression, Options{Seed: 1})
	cp := p.Column("c")
	if cp.MissingPct != 25 {
		t.Fatalf("missing pct = %g", cp.MissingPct)
	}
	if cp.DistinctCount != 2 {
		t.Fatalf("distinct = %d", cp.DistinctCount)
	}
}

func TestSamplesBounded(t *testing.T) {
	tb := salaryLikeTable()
	p, _ := Table(tb, "salary", data.Regression, Options{Samples: 5, Seed: 1})
	for _, c := range p.Columns {
		if len(c.Samples) > 5 {
			t.Fatalf("column %s has %d samples", c.Name, len(c.Samples))
		}
	}
}

func TestTargetCorrelationSignal(t *testing.T) {
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	noise := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i)
		y[i] = float64(i) * 2
		noise[i] = float64((i*2654435761)%1000) / 1000
	}
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewNumeric("x", x))
	tb.MustAddColumn(data.NewNumeric("noise", noise))
	tb.MustAddColumn(data.NewNumeric("y", y))
	p, _ := Table(tb, "y", data.Regression, Options{Seed: 1})
	if p.Column("x").TargetCorr < 0.9 {
		t.Fatalf("x corr = %g", p.Column("x").TargetCorr)
	}
	if p.Column("noise").TargetCorr > 0.5 {
		t.Fatalf("noise corr = %g", p.Column("noise").TargetCorr)
	}
}

func TestProfileDataset(t *testing.T) {
	ds, err := data.Load("Financial", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Dataset(ds, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dataset != "Financial" {
		t.Fatal("dataset name lost")
	}
	// Consolidated profile must include joined dimension columns.
	found := false
	for _, c := range p.Columns {
		if len(c.Name) > 4 && c.Name[:4] == "Fina" {
			found = true
		}
	}
	if !found {
		t.Log("columns:", len(p.Columns))
	}
	if len(p.Columns) <= ds.PrimaryTable().NumCols() {
		t.Fatalf("profile cols = %d, want > primary table cols %d", len(p.Columns), ds.PrimaryTable().NumCols())
	}
}

func TestProfileEmptyTable(t *testing.T) {
	if _, err := Table(data.NewTable("e"), "y", data.Binary, Options{}); err == nil {
		t.Fatal("empty table must error")
	}
}

func TestTypeCensus(t *testing.T) {
	tb := salaryLikeTable()
	p, _ := Table(tb, "salary", data.Regression, Options{Seed: 1})
	census := TypeCensus([]*Profile{p})
	total := 0
	for _, n := range census {
		total += n
	}
	if total != 6 { // 7 columns minus target
		t.Fatalf("census total = %d, want 6", total)
	}
	if census[FeatureConstant] != 1 {
		t.Fatalf("constant census = %d", census[FeatureConstant])
	}
}

func TestSimilarColumnsDetected(t *testing.T) {
	n := 400
	a := make([]string, n)
	b := make([]string, n)
	for i := 0; i < n; i++ {
		a[i] = string(rune('a' + i%4))
		b[i] = a[i] // identical distribution
	}
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewString("a", a))
	tb.MustAddColumn(data.NewString("b", b))
	tb.MustAddColumn(data.NewNumeric("y", make([]float64, n)))
	p, _ := Table(tb, "y", data.Regression, Options{Seed: 1})
	if len(p.Column("a").SimilarTo) == 0 {
		t.Fatal("identical columns should be flagged similar")
	}
}

func TestFeatureTypeStrings(t *testing.T) {
	for ft, want := range map[FeatureType]string{
		FeatureNumerical: "numerical", FeatureCategorical: "categorical",
		FeatureList: "list", FeatureSentence: "sentence",
		FeatureConstant: "constant", FeatureID: "id",
		FeatureBoolean: "boolean", FeatureUnknown: "unknown",
	} {
		if ft.String() != want {
			t.Errorf("%d.String() = %q", ft, ft.String())
		}
	}
}
