package prompt

import (
	"fmt"
	"strings"

	"catdb/internal/profile"
)

// Build is Algorithm 3 (PROMPT): it cleans the catalog projection, applies
// top-K selection, and constructs either one pipeline prompt (β=1, CatDB)
// or a chain of preprocessing/feature-engineering/model-selection prompts
// (β>1, CatDB Chain). Chain prompts after the first carry the pipeline
// built so far in a <CODE> section, which the driver fills in as results
// arrive (see core.ChainRunner); here the placeholder is empty.
func Build(in Input, m ModelSpec, cfg Config) []Prompt {
	in = CleanInput(in)
	in = SelectTopK(in, cfg.TopK)
	var rules Rules
	if cfg.IncludeRules {
		rules = BuildRules(in)
	}
	chains := cfg.Chains
	if chains <= 1 {
		p := Format(KindPipeline, in, in.Cols, rules.All(), "", m, cfg)
		return []Prompt{p}
	}
	// CatDB Chain: β column chunks (features only; the target rides along
	// in every chunk), preprocessing+fe prompts per chunk, one final
	// model-selection prompt.
	var feats []ColumnMeta
	var target []ColumnMeta
	for _, c := range in.Cols {
		if c.IsTarget {
			target = append(target, c)
		} else {
			feats = append(feats, c)
		}
	}
	k := (len(feats) + chains - 1) / chains
	if k < 1 {
		k = 1
	}
	var out []Prompt
	for i := 0; i < chains; i++ {
		lo, hi := i*k, (i+1)*k
		if lo >= len(feats) {
			break
		}
		if hi > len(feats) {
			hi = len(feats)
		}
		chunk := append(append([]ColumnMeta(nil), feats[lo:hi]...), target...)
		pre := filterRules(rules, "preprocessing", chunk)
		fe := filterRules(rules, "fe", chunk)
		pp := Format(KindPreprocessing, in, chunk, pre, "", m, cfg)
		pp.Chunk = i
		fp := Format(KindFeatureEng, in, chunk, fe, "", m, cfg)
		fp.Chunk = i
		out = append(out, pp, fp)
	}
	mp := Format(KindModelSelection, in, target, rules.Model, "", m, cfg)
	mp.Chunk = len(out)
	return append(out, mp)
}

// filterRules keeps rules of one stage that mention only columns in the
// chunk (stage-global rules such as rebalance always pass).
func filterRules(r Rules, stage string, chunk []ColumnMeta) []Rule {
	names := map[string]bool{}
	for _, c := range chunk {
		names[c.Name] = true
	}
	var src []Rule
	switch stage {
	case "preprocessing":
		src = r.Preprocessing
	case "fe":
		src = r.FeatureEng
	default:
		src = r.Model
	}
	var out []Rule
	for _, rule := range src {
		col := directiveColumn(rule.Directive)
		if col == "" || names[col] {
			out = append(out, rule)
		}
	}
	return out
}

// directiveColumn extracts the first quoted column name of a directive.
func directiveColumn(d string) string {
	i := strings.Index(d, `"`)
	if i < 0 {
		return ""
	}
	j := strings.Index(d[i+1:], `"`)
	if j < 0 {
		return ""
	}
	return d[i+1 : i+1+j]
}

// Format renders one prompt in the wire format (the T template of §2),
// enforcing the model's context budget: when the prompt would exceed it,
// schema sample lists are elided first, then rule lines are dropped from
// the end — reproducing the paper's observation that oversized prompts
// lead to ignored rules.
func Format(kind Kind, in Input, cols []ColumnMeta, rules []Rule, prevCode string, m ModelSpec, cfg Config) Prompt {
	schema := schemaLines(cols, cfg, in.Target)
	ruleLines := make([]string, len(rules))
	for i, r := range rules {
		ruleLines[i] = fmt.Sprintf("rule %s %s -- %s", r.Stage, r.Directive, r.Why)
	}
	render := func(schema, ruleLines []string) string {
		var b strings.Builder
		fmt.Fprintf(&b, "# CatDB %s prompt\n", kind)
		b.WriteString("<TASK>\n")
		fmt.Fprintf(&b, "dataset=%s task=%s target=%q rows=%d kind=%s\n",
			in.Dataset, taskName(in.Task), in.Target, in.Rows, kind)
		b.WriteString("</TASK>\n")
		if cfg.IncludeDescription && in.Description != "" {
			b.WriteString("<DESCRIPTION>\n")
			b.WriteString(in.Description)
			b.WriteString("\n</DESCRIPTION>\n")
		}
		b.WriteString("<SCHEMA>\n")
		for _, l := range schema {
			b.WriteString(l)
			b.WriteByte('\n')
		}
		b.WriteString("</SCHEMA>\n")
		if prevCode != "" {
			b.WriteString("<CODE>\n")
			b.WriteString(prevCode)
			if !strings.HasSuffix(prevCode, "\n") {
				b.WriteByte('\n')
			}
			b.WriteString("</CODE>\n")
		}
		if len(ruleLines) > 0 {
			b.WriteString("<RULES>\n")
			for _, l := range ruleLines {
				b.WriteString(l)
				b.WriteByte('\n')
			}
			b.WriteString("</RULES>\n")
		}
		b.WriteString("<OUTPUT>\nReturn only a PipeScript program, no prose.\n</OUTPUT>\n")
		return b.String()
	}
	text := render(schema, ruleLines)
	truncated := false
	if m.MaxPromptTokens > 0 {
		for CountTokens(text) > m.MaxPromptTokens && len(ruleLines) > 0 {
			ruleLines = ruleLines[:len(ruleLines)-1]
			truncated = true
			text = render(schema, ruleLines)
		}
		for CountTokens(text) > m.MaxPromptTokens && len(schema) > 1 {
			schema = schema[:len(schema)-1]
			truncated = true
			text = render(schema, ruleLines)
		}
	}
	return Prompt{Kind: kind, Text: text, Tokens: CountTokens(text), Truncated: truncated}
}

// schemaLines renders the S messages for the selected metadata combination.
func schemaLines(cols []ColumnMeta, cfg Config, target string) []string {
	it := cfg.Combo.items()
	adaptive := cfg.Combo == ComboAdaptive
	out := make([]string, 0, len(cols))
	for _, c := range cols {
		var b strings.Builder
		fmt.Fprintf(&b, "col name=%q type=%s feature=%s", c.Name, c.DataType, c.FeatureType)
		if c.IsTarget {
			b.WriteString(" target=true")
		}
		inclDistinct := it.distinct && (!adaptive || c.FeatureType != profile.FeatureNumerical)
		inclStats := it.stats && c.DataType.IsNumeric() && (!adaptive || c.FeatureType == profile.FeatureNumerical)
		inclValues := it.catValues && len(c.DistinctValues) > 0 &&
			(!adaptive || c.FeatureType == profile.FeatureCategorical || c.FeatureType == profile.FeatureBoolean)
		if inclDistinct {
			fmt.Fprintf(&b, " distinct=%d distinct_pct=%s", c.DistinctCount, fmtFloat(c.DistinctPct))
		}
		if it.missing && c.MissingPct > 0 {
			fmt.Fprintf(&b, " missing_pct=%s", fmtFloat(c.MissingPct))
		}
		if inclStats {
			fmt.Fprintf(&b, " min=%s max=%s mean=%s median=%s",
				fmtFloat(c.Stats.Min), fmtFloat(c.Stats.Max), fmtFloat(c.Stats.Mean), fmtFloat(c.Stats.Median))
		}
		if inclValues {
			vals := c.DistinctValues
			if len(vals) > 40 {
				vals = vals[:40]
			}
			fmt.Fprintf(&b, " values=%q", strings.Join(vals, "|"))
		}
		out = append(out, b.String())
	}
	return out
}

// WithCode returns a copy of the prompt with the given pipeline source
// inserted as (or replacing) the <CODE> section — the chain driver appends
// each step's result to the next prompt (Figure 6's ordering).
func WithCode(p Prompt, code string) Prompt {
	text := p.Text
	if i := strings.Index(text, "<CODE>\n"); i >= 0 {
		if j := strings.Index(text, "</CODE>\n"); j > i {
			text = text[:i] + text[j+len("</CODE>\n"):]
		}
	}
	if code != "" {
		block := "<CODE>\n" + code
		if !strings.HasSuffix(code, "\n") {
			block += "\n"
		}
		block += "</CODE>\n"
		if i := strings.Index(text, "<SCHEMA>"); i >= 0 {
			text = text[:i] + block + text[i:]
		} else {
			text += block
		}
	}
	out := p
	out.Text = text
	out.Tokens = CountTokens(text)
	return out
}
