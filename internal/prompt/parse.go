package prompt

import (
	"strconv"
	"strings"

	"catdb/internal/data"
)

// Parsed is the structured view of a prompt's wire format — what the
// (simulated) LLM "understands" when reading the prompt text.
type Parsed struct {
	Dataset     string
	Task        data.Task
	Target      string
	Rows        int
	Kind        Kind
	Description string
	Cols        []ParsedCol
	Rules       []ParsedRule
	PrevCode    string
	// Error-correction prompts:
	HasError  bool
	ErrorLine int
	ErrorCode string
	ErrorMsg  string
}

// ParsedCol is one schema line as seen by the LLM.
type ParsedCol struct {
	Name        string
	Type        string
	Feature     string
	IsTarget    bool
	Distinct    int
	DistinctPct float64
	MissingPct  float64
	Min, Max    float64
	Mean        float64
	Median      float64
	Values      []string
	HasStats    bool
}

// ParsedRule is one rule line: the stage and the directly-followable
// directive (the why text is dropped — it is for humans).
type ParsedRule struct {
	Stage     string
	Directive string
}

// ParsePrompt decodes the wire format produced by Format/FormatErrorPrompt.
// Unknown lines are skipped — the format is designed so a sloppy reader
// still extracts the essentials, like an LLM would.
func ParsePrompt(text string) Parsed {
	var p Parsed
	section := ""
	var desc, code []string
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		switch line {
		case "<TASK>", "<SCHEMA>", "<RULES>", "<DESCRIPTION>", "<CODE>", "<ERROR>", "<OUTPUT>":
			section = strings.Trim(line, "<>")
			continue
		case "</TASK>", "</SCHEMA>", "</RULES>", "</DESCRIPTION>", "</CODE>", "</ERROR>", "</OUTPUT>":
			section = ""
			continue
		}
		switch section {
		case "TASK":
			kv := parseKV(line)
			p.Dataset = kv["dataset"]
			p.Target = kv["target"]
			p.Kind = Kind(kv["kind"])
			p.Rows, _ = strconv.Atoi(kv["rows"])
			switch kv["task"] {
			case "binary":
				p.Task = data.Binary
			case "multiclass":
				p.Task = data.Multiclass
			case "regression":
				p.Task = data.Regression
			}
		case "DESCRIPTION":
			desc = append(desc, raw)
		case "CODE":
			code = append(code, raw)
		case "SCHEMA":
			if !strings.HasPrefix(line, "col ") {
				continue
			}
			kv := parseKV(strings.TrimPrefix(line, "col "))
			c := ParsedCol{
				Name:     kv["name"],
				Type:     kv["type"],
				Feature:  kv["feature"],
				IsTarget: kv["target"] == "true",
			}
			c.Distinct, _ = strconv.Atoi(kv["distinct"])
			c.DistinctPct, _ = strconv.ParseFloat(kv["distinct_pct"], 64)
			c.MissingPct, _ = strconv.ParseFloat(kv["missing_pct"], 64)
			if _, ok := kv["mean"]; ok {
				c.HasStats = true
				c.Min, _ = strconv.ParseFloat(kv["min"], 64)
				c.Max, _ = strconv.ParseFloat(kv["max"], 64)
				c.Mean, _ = strconv.ParseFloat(kv["mean"], 64)
				c.Median, _ = strconv.ParseFloat(kv["median"], 64)
			}
			if v, ok := kv["values"]; ok && v != "" {
				c.Values = strings.Split(v, "|")
			}
			p.Cols = append(p.Cols, c)
		case "RULES":
			if !strings.HasPrefix(line, "rule ") {
				continue
			}
			rest := strings.TrimPrefix(line, "rule ")
			if i := strings.Index(rest, " -- "); i >= 0 {
				rest = rest[:i]
			}
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				continue
			}
			p.Rules = append(p.Rules, ParsedRule{Stage: parts[0], Directive: parts[1]})
		case "ERROR":
			kv := parseKV(line)
			if _, ok := kv["code"]; ok {
				p.HasError = true
				p.ErrorCode = kv["code"]
				p.ErrorMsg = kv["msg"]
				p.ErrorLine, _ = strconv.Atoi(kv["line"])
			}
		}
	}
	p.Description = strings.TrimSpace(strings.Join(desc, "\n"))
	p.PrevCode = strings.Join(code, "\n")
	return p
}

// parseKV splits `a=1 b="x y" c=z` into a map, honouring double quotes.
func parseKV(line string) map[string]string {
	out := map[string]string{}
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		start := i
		for i < len(line) && line[i] != '=' && line[i] != ' ' {
			i++
		}
		if i >= len(line) || line[i] != '=' {
			continue
		}
		key := line[start:i]
		i++ // skip '='
		var val string
		if i < len(line) && line[i] == '"' {
			// Scan honouring backslash escapes (FormatErrorPrompt quotes
			// messages with strconv.Quote).
			var sb strings.Builder
			j := i + 1
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' && j+1 < len(line) {
					j++
				}
				sb.WriteByte(line[j])
				j++
			}
			val = sb.String()
			i = j + 1
		} else {
			j := i
			for j < len(line) && line[j] != ' ' {
				j++
			}
			val = line[i:j]
			i = j
		}
		out[key] = val
	}
	return out
}

// FormatErrorPrompt renders the dedicated error-correction template of
// §4.2 (Figure 7): the erroneous source in <CODE>, the error with its line
// number in <ERROR>, and — for runtime errors — the metadata relevant to
// the error in <SCHEMA>.
func FormatErrorPrompt(in Input, source string, errLine int, errCode, errMsg string, relevantCols []ColumnMeta, cfg Config) Prompt {
	var b strings.Builder
	b.WriteString("# CatDB error-correction prompt\n")
	b.WriteString("<TASK>\n")
	b.WriteString("dataset=" + in.Dataset + " task=" + taskName(in.Task) +
		" target=" + strconv.Quote(in.Target) + " rows=" + strconv.Itoa(in.Rows) + " kind=error-fix\n")
	b.WriteString("</TASK>\n<CODE>\n")
	b.WriteString(source)
	if !strings.HasSuffix(source, "\n") {
		b.WriteByte('\n')
	}
	b.WriteString("</CODE>\n<ERROR>\n")
	b.WriteString("line=" + strconv.Itoa(errLine) + " code=" + errCode + " msg=" + strconv.Quote(errMsg) + "\n")
	b.WriteString("</ERROR>\n")
	if len(relevantCols) > 0 {
		b.WriteString("<SCHEMA>\n")
		for _, l := range schemaLines(relevantCols, cfg, in.Target) {
			b.WriteString(l)
			b.WriteByte('\n')
		}
		b.WriteString("</SCHEMA>\n")
	}
	b.WriteString("<OUTPUT>\nReturn the corrected PipeScript program only.\n</OUTPUT>\n")
	text := b.String()
	return Prompt{Kind: "error-fix", Text: text, Tokens: CountTokens(text)}
}
