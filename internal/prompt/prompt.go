// Package prompt implements the paper's prompt construction: metadata
// projection and rule definition (Algorithm 2, METADATAANDRULES), the
// overall single/chain prompt construction (Algorithm 3, PROMPT), the
// eleven metadata combinations of Table 1, the Figure 6 templates, and
// token accounting. Prompts are rendered into a rigid textual wire format
// with <TASK>/<SCHEMA>/<RULES> sections that the (simulated) LLM parses.
package prompt

import (
	"fmt"
	"strings"

	"catdb/internal/data"
	"catdb/internal/profile"
)

// ModelSpec is the prompt-relevant description of an LLM (Algorithm 3's M
// parameter): its name and context budget.
type ModelSpec struct {
	Name string
	// MaxPromptTokens is the context limit; schema/rule lines beyond it are
	// truncated, reproducing the "ignored rules" failure of Figure 10(c).
	MaxPromptTokens int
}

// Combo selects one of Table 1's metadata combinations (#1-#11). Each
// combination always includes the schema; the other data-profiling items
// are toggled per the table.
type Combo int

// The 11 metadata combinations of Table 1 plus the adaptive CatDB
// selection (ComboAdaptive) used by default.
const (
	Combo1  Combo = 1  // schema only
	Combo2  Combo = 2  // + distinct counts
	Combo3  Combo = 3  // + missing frequency
	Combo4  Combo = 4  // + basic statistics
	Combo5  Combo = 5  // + categorical values
	Combo6  Combo = 6  // distinct + missing
	Combo7  Combo = 7  // distinct + statistics
	Combo8  Combo = 8  // missing + statistics
	Combo9  Combo = 9  // missing + categorical values
	Combo10 Combo = 10 // statistics + categorical values
	Combo11 Combo = 11 // everything
	// ComboAdaptive is CatDB's data-characteristic-driven projection: it
	// includes each item only where it is informative (e.g. statistics for
	// numerical columns, values for categorical ones).
	ComboAdaptive Combo = 0
)

// items describes which data-profiling items a combination carries.
type items struct {
	distinct, missing, stats, catValues bool
}

func (c Combo) items() items {
	switch c {
	case Combo1:
		return items{}
	case Combo2:
		return items{distinct: true}
	case Combo3:
		return items{missing: true}
	case Combo4:
		return items{stats: true}
	case Combo5:
		return items{catValues: true}
	case Combo6:
		return items{distinct: true, missing: true}
	case Combo7:
		return items{distinct: true, stats: true}
	case Combo8:
		return items{missing: true, stats: true}
	case Combo9:
		return items{missing: true, catValues: true}
	case Combo10:
		return items{stats: true, catValues: true}
	default: // Combo11 and ComboAdaptive carry everything available
		return items{distinct: true, missing: true, stats: true, catValues: true}
	}
}

// ColumnMeta is the projected per-column metadata used in prompts (the S
// messages of Algorithm 2).
type ColumnMeta struct {
	Name           string
	DataType       data.Kind
	FeatureType    profile.FeatureType
	DistinctPct    float64
	MissingPct     float64
	DistinctCount  int
	Stats          data.Stats
	Samples        []string
	DistinctValues []string
	TargetCorr     float64
	IsTarget       bool
}

// Input is everything Algorithm 3 needs about a dataset.
type Input struct {
	Dataset     string
	Task        data.Task
	Target      string
	Rows        int
	Cols        []ColumnMeta
	Description string
	// TopClassShare is the largest class's share of training rows for
	// classification tasks (the label-imbalance signal of Algorithm 2).
	TopClassShare float64
}

// InputFromProfile projects a data profile into prompt input.
func InputFromProfile(p *profile.Profile, topClassShare float64, description string) Input {
	in := Input{
		Dataset: p.Dataset, Task: p.Task, Target: p.Target, Rows: p.Rows,
		Description: description, TopClassShare: topClassShare,
	}
	for _, c := range p.Columns {
		in.Cols = append(in.Cols, ColumnMeta{
			Name: c.Name, DataType: c.DataType, FeatureType: c.FeatureType,
			DistinctPct: c.DistinctPct, MissingPct: c.MissingPct,
			DistinctCount: c.DistinctCount, Stats: c.Stats,
			Samples: c.Samples, DistinctValues: c.DistinctValues,
			TargetCorr: c.TargetCorr, IsTarget: c.IsTarget,
		})
	}
	return in
}

// Kind labels what a constructed prompt asks for.
type Kind string

// Prompt kinds (Figure 6's ordering for CatDB Chain).
const (
	KindPipeline       Kind = "pipeline"        // single-prompt CatDB: full pipeline
	KindPreprocessing  Kind = "preprocessing"   // chain: per-chunk data preparation
	KindFeatureEng     Kind = "fe-engineering"  // chain: per-chunk feature engineering
	KindModelSelection Kind = "model-selection" // chain: final model selection
)

// Prompt is one constructed LLM prompt.
type Prompt struct {
	Kind      Kind
	Text      string
	Tokens    int
	Truncated bool // context limit forced dropping schema/rule lines
	Chunk     int  // chain chunk index (0 for single prompts)
}

// CountTokens approximates LLM tokenization at ~4 characters per token,
// the standard rule of thumb for English/code.
func CountTokens(s string) int { return (len(s) + 3) / 4 }

// Config tunes prompt construction (the α, β, and metadata knobs).
type Config struct {
	Combo Combo // metadata combination; ComboAdaptive is the CatDB default
	// TopK is α: keep only the K columns most associated with the target
	// (0 = all columns).
	TopK int
	// Chains is β: 1 = single prompt (CatDB), >1 = CatDB Chain.
	Chains int
	// IncludeRules attaches the R messages; metadata-only baselines set
	// this false.
	IncludeRules bool
	// IncludeDescription attaches the optional user description.
	IncludeDescription bool
}

// DefaultConfig is CatDB's default: adaptive metadata with rules, single
// prompt.
func DefaultConfig() Config {
	return Config{Combo: ComboAdaptive, Chains: 1, IncludeRules: true, IncludeDescription: true}
}

func taskName(t data.Task) string { return t.String() }

func fmtFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}
