package prompt

import (
	"strings"
	"testing"

	"catdb/internal/data"
	"catdb/internal/profile"
)

func sampleInput() Input {
	return Input{
		Dataset: "Salary", Task: data.Regression, Target: "salary", Rows: 500,
		Description: "Employee salary records.",
		Cols: []ColumnMeta{
			{Name: "experience", DataType: data.KindString, FeatureType: profile.FeatureSentence,
				DistinctPct: 90, DistinctCount: 450},
			{Name: "gender", DataType: data.KindString, FeatureType: profile.FeatureCategorical,
				DistinctCount: 4, DistinctValues: []string{"FEMALE", "Female", " male", "Male"}},
			{Name: "skills", DataType: data.KindString, FeatureType: profile.FeatureList,
				DistinctCount: 300},
			{Name: "zip", DataType: data.KindString, FeatureType: profile.FeatureCategorical,
				DistinctCount: 120},
			{Name: "age", DataType: data.KindFloat, FeatureType: profile.FeatureNumerical,
				MissingPct: 5, Stats: data.Stats{Min: 18, Max: 70, Mean: 40, Median: 39, Std: 10, Q1: 32, Q3: 48},
				TargetCorr: 0.4},
			{Name: "bonus", DataType: data.KindFloat, FeatureType: profile.FeatureNumerical,
				Stats: data.Stats{Min: 0, Max: 1e6, Mean: 100, Median: 80, Std: 500, Q1: 40, Q3: 130}},
			{Name: "emp_id", DataType: data.KindInt, FeatureType: profile.FeatureID, DistinctPct: 100},
			{Name: "firmware", DataType: data.KindString, FeatureType: profile.FeatureConstant, DistinctCount: 1},
			{Name: "mostly_null", DataType: data.KindFloat, FeatureType: profile.FeatureNumerical, MissingPct: 99},
			{Name: "salary", DataType: data.KindFloat, FeatureType: profile.FeatureNumerical, IsTarget: true,
				Stats: data.Stats{Min: 50, Max: 500, Mean: 200, Median: 180, Std: 80, Q1: 140, Q3: 250}},
		},
	}
}

func TestBuildRulesCoverage(t *testing.T) {
	r := BuildRules(sampleInput())
	all := r.All()
	var directives []string
	for _, rule := range all {
		directives = append(directives, rule.Directive)
	}
	joined := strings.Join(directives, "\n")
	for _, want := range []string{
		`impute "age" strategy=median`,
		`remove_outliers "bonus"`,
		`onehot "gender"`,
		`hash_encode "zip"`,
		`khot "skills"`,
		`extract_token "experience"`,
		`dedup_values "gender"`,
		`drop "emp_id"`,
		`drop "firmware"`,
		"train family=",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("rules missing %q:\n%s", want, joined)
		}
	}
	if len(r.Model) == 0 {
		t.Fatal("model rules missing")
	}
}

func TestBuildRulesImbalanceAndAugment(t *testing.T) {
	in := sampleInput()
	in.Task = data.Multiclass
	in.TopClassShare = 0.8
	r := BuildRules(in)
	if !strings.Contains(strings.Join(dirs(r.Preprocessing), "\n"), "rebalance") {
		t.Fatal("imbalanced classification must get a rebalance rule")
	}
	reg := sampleInput()
	reg.Rows = 500
	r2 := BuildRules(reg)
	if !strings.Contains(strings.Join(dirs(r2.Preprocessing), "\n"), "augment") {
		t.Fatal("small regression must get an augment rule")
	}
}

func dirs(rules []Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Directive
	}
	return out
}

func TestCleanInput(t *testing.T) {
	in := CleanInput(sampleInput())
	for _, c := range in.Cols {
		if c.Name == "mostly_null" {
			t.Fatal("mostly-null column must be cleaned away")
		}
		if c.Name == "firmware" {
			t.Fatal("constant column must be cleaned away")
		}
	}
	// Target always kept.
	found := false
	for _, c := range in.Cols {
		if c.IsTarget {
			found = true
		}
	}
	if !found {
		t.Fatal("target lost in cleaning")
	}
}

func TestSelectTopKPriority(t *testing.T) {
	in := sampleInput()
	out := SelectTopK(in, 2)
	names := map[string]bool{}
	for _, c := range out.Cols {
		names[c.Name] = true
	}
	if !names["salary"] {
		t.Fatal("target must survive top-K")
	}
	// Categoricals have top priority.
	if !names["gender"] || !names["zip"] {
		t.Fatalf("top-2 should be the categorical columns, got %v", names)
	}
	if len(out.Cols) != 3 {
		t.Fatalf("topk size = %d", len(out.Cols))
	}
	// k<=0 keeps everything.
	if got := len(SelectTopK(in, 0).Cols); got != len(in.Cols) {
		t.Fatalf("k=0 should keep all, got %d", got)
	}
}

func TestBuildSinglePrompt(t *testing.T) {
	in := sampleInput()
	ps := Build(in, ModelSpec{Name: "sim", MaxPromptTokens: 100000}, DefaultConfig())
	if len(ps) != 1 || ps[0].Kind != KindPipeline {
		t.Fatalf("single build: %d prompts", len(ps))
	}
	text := ps[0].Text
	for _, want := range []string{"<TASK>", "<SCHEMA>", "<RULES>", "dataset=Salary", "task=regression", `target="salary"`} {
		if !strings.Contains(text, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
	if ps[0].Tokens != CountTokens(text) {
		t.Fatal("token count mismatch")
	}
	if ps[0].Truncated {
		t.Fatal("roomy prompt must not truncate")
	}
}

func TestBuildChainPrompts(t *testing.T) {
	in := sampleInput()
	cfg := DefaultConfig()
	cfg.Chains = 2
	ps := Build(in, ModelSpec{Name: "sim", MaxPromptTokens: 100000}, cfg)
	// 2 chunks × (preprocessing + fe) + 1 model selection = 5.
	if len(ps) != 5 {
		t.Fatalf("chain prompts = %d, want 5", len(ps))
	}
	if ps[0].Kind != KindPreprocessing || ps[1].Kind != KindFeatureEng {
		t.Fatalf("chain ordering: %s %s", ps[0].Kind, ps[1].Kind)
	}
	if ps[4].Kind != KindModelSelection {
		t.Fatalf("last prompt = %s", ps[4].Kind)
	}
}

func TestTruncationDropsRules(t *testing.T) {
	in := sampleInput()
	// Blow up the schema with many columns.
	for i := 0; i < 300; i++ {
		in.Cols = append(in.Cols, ColumnMeta{
			Name:     "extra" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)),
			DataType: data.KindFloat, FeatureType: profile.FeatureNumerical,
			MissingPct: 5, Stats: data.Stats{Min: 0, Max: 1, Mean: 0.5, Median: 0.5, Std: 1},
		})
	}
	ps := Build(in, ModelSpec{Name: "tiny", MaxPromptTokens: 800}, DefaultConfig())
	if !ps[0].Truncated {
		t.Fatal("tiny context must force truncation")
	}
	if ps[0].Tokens > 800 {
		t.Fatalf("prompt still over budget: %d", ps[0].Tokens)
	}
}

func TestCombosToggleItems(t *testing.T) {
	in := sampleInput()
	get := func(c Combo) string {
		cfg := Config{Combo: c, Chains: 1, IncludeRules: false}
		return Build(in, ModelSpec{MaxPromptTokens: 100000}, cfg)[0].Text
	}
	t1 := get(Combo1)
	if strings.Contains(t1, "missing_pct=") || strings.Contains(t1, "mean=") || strings.Contains(t1, "values=") {
		t.Fatal("combo1 must be schema-only")
	}
	t3 := get(Combo3)
	if !strings.Contains(t3, "missing_pct=") {
		t.Fatal("combo3 must include missing frequency")
	}
	t4 := get(Combo4)
	if !strings.Contains(t4, "mean=") {
		t.Fatal("combo4 must include stats")
	}
	t5 := get(Combo5)
	if !strings.Contains(t5, "values=") {
		t.Fatal("combo5 must include categorical values")
	}
	t11 := get(Combo11)
	for _, want := range []string{"missing_pct=", "mean=", "values=", "distinct="} {
		if !strings.Contains(t11, want) {
			t.Fatalf("combo11 missing %q", want)
		}
	}
	// No rules section in metadata-only configs.
	if strings.Contains(t11, "<RULES>") {
		t.Fatal("IncludeRules=false must omit rules")
	}
}

func TestParsePromptRoundTrip(t *testing.T) {
	in := sampleInput()
	ps := Build(in, ModelSpec{Name: "sim", MaxPromptTokens: 100000}, DefaultConfig())
	parsed := ParsePrompt(ps[0].Text)
	if parsed.Dataset != "Salary" || parsed.Target != "salary" || parsed.Task != data.Regression {
		t.Fatalf("task round trip: %+v", parsed)
	}
	if parsed.Rows != 500 || parsed.Kind != KindPipeline {
		t.Fatalf("rows/kind: %+v", parsed)
	}
	if parsed.Description == "" {
		t.Fatal("description lost")
	}
	var gender *ParsedCol
	for i := range parsed.Cols {
		if parsed.Cols[i].Name == "gender" {
			gender = &parsed.Cols[i]
		}
	}
	if gender == nil || gender.Feature != "categorical" || len(gender.Values) != 4 {
		t.Fatalf("gender column round trip: %+v", gender)
	}
	if len(parsed.Rules) == 0 {
		t.Fatal("rules lost")
	}
	// Rules preserve directives verbatim.
	found := false
	for _, r := range parsed.Rules {
		if r.Directive == `impute "age" strategy=median` && r.Stage == "preprocessing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("directive round trip failed: %+v", parsed.Rules)
	}
}

func TestParseErrorPrompt(t *testing.T) {
	in := sampleInput()
	p := FormatErrorPrompt(in, "pipeline \"x\"\ntrain model=knn\n", 2, "E_NAN_IN_MATRIX",
		`input contains NaN: column "age"`, in.Cols[:2], DefaultConfig())
	parsed := ParsePrompt(p.Text)
	if !parsed.HasError || parsed.ErrorCode != "E_NAN_IN_MATRIX" || parsed.ErrorLine != 2 {
		t.Fatalf("error round trip: %+v", parsed)
	}
	if !strings.Contains(parsed.PrevCode, "train model=knn") {
		t.Fatalf("code section lost: %q", parsed.PrevCode)
	}
	if len(parsed.Cols) != 2 {
		t.Fatalf("relevant schema lost: %d cols", len(parsed.Cols))
	}
}

func TestParseKV(t *testing.T) {
	kv := parseKV(`a=1 b="two words" c=x_y`)
	if kv["a"] != "1" || kv["b"] != "two words" || kv["c"] != "x_y" {
		t.Fatalf("parseKV = %v", kv)
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 {
		t.Fatal("empty tokens")
	}
	if CountTokens("abcd") != 1 || CountTokens("abcde") != 2 {
		t.Fatal("token rounding")
	}
}

func TestInputFromProfile(t *testing.T) {
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewNumeric("x", []float64{1, 2, 3, 4}))
	tb.MustAddColumn(data.NewString("y", []string{"a", "b", "a", "b"}))
	prof, err := profile.Table(tb, "y", data.Binary, profile.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := InputFromProfile(prof, 0.5, "desc")
	if in.Dataset != "t" || len(in.Cols) != 2 || in.TopClassShare != 0.5 {
		t.Fatalf("input: %+v", in)
	}
}

func TestDirectiveColumn(t *testing.T) {
	if directiveColumn(`impute "age" strategy=median`) != "age" {
		t.Fatal("directiveColumn quoted extraction")
	}
	if directiveColumn("rebalance method=adasyn") != "" {
		t.Fatal("global directives have no column")
	}
}
