package prompt

import (
	"fmt"
	"sort"

	"catdb/internal/data"
	"catdb/internal/profile"
)

// Rule is one machine-followable instruction (an R message of Algorithm
// 2). Stage is one of "preprocessing", "fe", "model"; Directive maps
// one-to-one onto a PipeScript statement the LLM should emit; Why is the
// human-readable justification included in the prompt.
type Rule struct {
	Stage     string
	Directive string
	Why       string
}

// Rules groups the rule families of Algorithm 2.
type Rules struct {
	Preprocessing []Rule
	FeatureEng    []Rule
	Model         []Rule
}

// All returns every rule in stage order.
func (r Rules) All() []Rule {
	out := append([]Rule(nil), r.Preprocessing...)
	out = append(out, r.FeatureEng...)
	return append(out, r.Model...)
}

// BuildRules is the rule-definition half of Algorithm 2: it derives
// data-preparation, feature-dependency/filter, and data-augmentation rules
// from the projected metadata, plus an open-ended model-selection rule.
func BuildRules(in Input) Rules {
	var r Rules
	var anyMissing bool

	for _, c := range in.Cols {
		if c.IsTarget {
			continue
		}
		switch c.FeatureType {
		case profile.FeatureConstant:
			r.FeatureEng = append(r.FeatureEng, Rule{
				Stage: "fe", Directive: fmt.Sprintf("drop %q", c.Name),
				Why: "constant column carries no signal",
			})
			continue
		case profile.FeatureID:
			r.FeatureEng = append(r.FeatureEng, Rule{
				Stage: "fe", Directive: fmt.Sprintf("drop %q", c.Name),
				Why: "identifier column would leak row identity",
			})
			continue
		}
		// Data preparation: imputation for missing values.
		if c.MissingPct > 0 {
			anyMissing = true
			strategy := "most_frequent"
			if c.DataType.IsNumeric() && c.FeatureType == profile.FeatureNumerical {
				strategy = "median"
			}
			r.Preprocessing = append(r.Preprocessing, Rule{
				Stage:     "preprocessing",
				Directive: fmt.Sprintf("impute %q strategy=%s", c.Name, strategy),
				Why:       fmt.Sprintf("%.1f%% of values are missing", c.MissingPct),
			})
		}
		// Data preparation: outlier handling for heavy-tailed numericals,
		// triggered on *robust* spread (IQR): corrupted extreme cells
		// inflate the standard deviation and would mask a mean/std test.
		// Rows carrying extreme values are removed from training (and the
		// bounds clip evaluation data), which repairs corrupted training
		// sets without blending bad values into the distribution.
		if c.FeatureType == profile.FeatureNumerical || c.FeatureType == profile.FeatureBoolean {
			iqr := c.Stats.Q3 - c.Stats.Q1
			if iqr <= 0 {
				iqr = c.Stats.Std / 2
			}
			if iqr > 0 && (c.Stats.Max > c.Stats.Q3+8*iqr || c.Stats.Min < c.Stats.Q1-8*iqr) {
				r.Preprocessing = append(r.Preprocessing, Rule{
					Stage:     "preprocessing",
					Directive: fmt.Sprintf("remove_outliers %q method=iqr factor=4", c.Name),
					Why:       "extreme values far outside the bulk of the distribution",
				})
			}
		}
		// Feature engineering by feature type.
		switch c.FeatureType {
		case profile.FeatureCategorical:
			if c.DistinctCount <= 64 {
				r.FeatureEng = append(r.FeatureEng, Rule{
					Stage: "fe", Directive: fmt.Sprintf("onehot %q", c.Name),
					Why: fmt.Sprintf("categorical with %d distinct values", c.DistinctCount),
				})
			} else {
				r.FeatureEng = append(r.FeatureEng, Rule{
					Stage: "fe", Directive: fmt.Sprintf("hash_encode %q buckets=64", c.Name),
					Why: fmt.Sprintf("high-cardinality categorical (%d values)", c.DistinctCount),
				})
			}
		case profile.FeatureList:
			r.FeatureEng = append(r.FeatureEng, Rule{
				Stage: "fe", Directive: fmt.Sprintf("khot %q", c.Name),
				Why: "list-valued cells; encode item membership",
			})
		case profile.FeatureSentence:
			r.FeatureEng = append(r.FeatureEng, Rule{
				Stage: "fe", Directive: fmt.Sprintf("extract_token %q", c.Name),
				Why: "free-text column whose content token is categorical",
			})
			r.FeatureEng = append(r.FeatureEng, Rule{
				Stage: "fe", Directive: fmt.Sprintf("dedup_values %q", c.Name),
				Why: "extracted tokens may have duplicate spellings",
			})
			r.FeatureEng = append(r.FeatureEng, Rule{
				Stage: "fe", Directive: fmt.Sprintf("onehot %q", c.Name),
				Why: "encode the extracted categories",
			})
		}
		// Feature filter: low-signal, mostly-missing columns.
		if c.MissingPct > 60 && c.TargetCorr < 0.05 {
			r.FeatureEng = append(r.FeatureEng, Rule{
				Stage: "fe", Directive: fmt.Sprintf("drop %q", c.Name),
				Why: "mostly missing and uncorrelated with the target",
			})
		}
	}
	// Dirty categorical cleanup: any string feature whose distinct values
	// normalize onto fewer categories gets a dedup rule.
	for _, c := range in.Cols {
		if c.IsTarget || c.FeatureType != profile.FeatureCategorical || c.DataType != data.KindString {
			continue
		}
		if hasMessyVariants(c.DistinctValues) {
			r.Preprocessing = append(r.Preprocessing, Rule{
				Stage:     "preprocessing",
				Directive: fmt.Sprintf("dedup_values %q", c.Name),
				Why:       "distinct values contain casing/spacing duplicates",
			})
		}
	}
	// Target cleaning for regression: rows with absurd label values are
	// removed from training (never from evaluation data).
	if in.Task == data.Regression {
		for _, c := range in.Cols {
			if !c.IsTarget {
				continue
			}
			iqr := c.Stats.Q3 - c.Stats.Q1
			if iqr > 0 && (c.Stats.Max > c.Stats.Q3+8*iqr || c.Stats.Min < c.Stats.Q1-8*iqr) {
				r.Preprocessing = append(r.Preprocessing, Rule{
					Stage:     "preprocessing",
					Directive: fmt.Sprintf("remove_outliers %q method=iqr factor=4", c.Name),
					Why:       "target labels contain extreme values; drop those training rows",
				})
			}
		}
	}
	// Data augmentation rules (Algorithm 2 lines 10-12).
	if in.Task.IsClassification() && in.TopClassShare > 0.6 {
		r.Preprocessing = append(r.Preprocessing, Rule{
			Stage: "preprocessing", Directive: "rebalance method=adasyn",
			Why: fmt.Sprintf("labels are imbalanced (top class holds %.0f%%)", in.TopClassShare*100),
		})
	}
	if in.Task == data.Regression && in.Rows < 2000 {
		r.Preprocessing = append(r.Preprocessing, Rule{
			Stage: "preprocessing", Directive: "augment factor=0.15",
			Why: "small regression dataset; densify sparse target regions",
		})
	}
	if anyMissing {
		r.Preprocessing = append(r.Preprocessing, Rule{
			Stage: "preprocessing", Directive: "impute_all strategy=auto",
			Why: "safety net for residual missing cells after joins",
		})
	}
	// Model selection: open-ended family guidance (not a fixed model).
	features := len(in.Cols) - 1
	family := "tree_ensemble"
	switch {
	case in.Task == data.Regression && features <= 8:
		family = "boosting_or_linear"
	case in.Rows > 50000:
		family = "boosting"
	case features > 150:
		family = "tree_ensemble_shallow"
	}
	r.Model = append(r.Model, Rule{
		Stage:     "model",
		Directive: fmt.Sprintf("train family=%s", family),
		Why: fmt.Sprintf("%s task with %d rows and %d features",
			taskName(in.Task), in.Rows, features),
	})
	r.Model = append(r.Model, Rule{
		Stage: "model", Directive: "scale all_numeric method=standard",
		Why: "standardized features help distance/linear models",
	})
	return r
}

// hasMessyVariants reports whether a distinct-value list contains entries
// that collapse under normalization (case/space/separator duplicates).
func hasMessyVariants(values []string) bool {
	seen := map[string]string{}
	for _, v := range values {
		nf := normalizeLite(v)
		if prev, ok := seen[nf]; ok && prev != v {
			return true
		}
		seen[nf] = v
	}
	return false
}

func normalizeLite(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r-'A'+'a')
		case r == ' ', r == '\t', r == '-':
			// skip separators entirely
		case r == '_':
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// SelectTopK implements the metadata-projection priority of §3.4: keep the
// target plus the K features ranked by group priority (categorical first,
// then correlated-with-missing, sentence, numerical, boolean) and target
// association within groups. K<=0 keeps everything.
func SelectTopK(in Input, k int) Input {
	if k <= 0 || k >= len(in.Cols)-1 {
		return in
	}
	groupOf := func(c ColumnMeta) int {
		switch {
		case c.FeatureType == profile.FeatureCategorical:
			return 0
		case c.MissingPct > 0 && c.TargetCorr > 0.2:
			return 1
		case c.FeatureType == profile.FeatureSentence || c.FeatureType == profile.FeatureList:
			return 2
		case c.FeatureType == profile.FeatureNumerical:
			return 3
		default:
			return 4
		}
	}
	idx := make([]int, 0, len(in.Cols))
	var target []int
	for i, c := range in.Cols {
		if c.IsTarget {
			target = append(target, i)
			continue
		}
		idx = append(idx, i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ca, cb := in.Cols[idx[a]], in.Cols[idx[b]]
		ga, gb := groupOf(ca), groupOf(cb)
		if ga != gb {
			return ga < gb
		}
		if ca.TargetCorr != cb.TargetCorr {
			return ca.TargetCorr > cb.TargetCorr
		}
		return ca.Name < cb.Name
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	idx = append(idx, target...)
	sort.Ints(idx)
	out := in
	out.Cols = make([]ColumnMeta, 0, len(idx))
	for _, i := range idx {
		out.Cols = append(out.Cols, in.Cols[i])
	}
	return out
}

// CleanInput is Algorithm 3's CLEANDATACATALOG: it removes empty, constant,
// and nearly-all-null columns from the projection (never the target).
// Constant/ID columns remain only as drop rules, not as metadata.
func CleanInput(in Input) Input {
	out := in
	out.Cols = nil
	for _, c := range in.Cols {
		if !c.IsTarget {
			if c.MissingPct >= 98 {
				continue
			}
			if c.FeatureType == profile.FeatureConstant && c.DistinctCount <= 1 {
				continue
			}
		}
		out.Cols = append(out.Cols, c)
	}
	return out
}
